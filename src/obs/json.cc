#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hire {
namespace obs {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonString(const std::string& text) {
  return "\"" + JsonEscape(text) + "\"";
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator.
// ---------------------------------------------------------------------------

namespace {

struct Parser {
  const char* p;
  const char* end;
  const char* begin;
  std::string error;
  int depth = 0;

  bool Fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at offset " + std::to_string(p - begin);
    }
    return false;
  }

  void SkipSpace() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool ParseString() {
    if (p >= end || *p != '"') return Fail("expected string");
    ++p;
    while (p < end) {
      const unsigned char c = static_cast<unsigned char>(*p);
      if (c == '"') {
        ++p;
        return true;
      }
      if (c == '\\') {
        ++p;
        if (p >= end) return Fail("truncated escape");
        const char esc = *p;
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p;
            if (p >= end || !std::isxdigit(static_cast<unsigned char>(*p))) {
              return Fail("bad \\u escape");
            }
          }
        } else if (std::strchr("\"\\/bfnrt", esc) == nullptr) {
          return Fail("bad escape character");
        }
        ++p;
        continue;
      }
      if (c < 0x20) return Fail("raw control character in string");
      ++p;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber() {
    const char* start = p;
    if (p < end && *p == '-') ++p;
    while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    if (p < end && *p == '.') {
      ++p;
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p == start || (p == start + 1 && *start == '-')) {
      return Fail("malformed number");
    }
    return true;
  }

  bool ParseLiteral(const char* word) {
    const size_t len = std::strlen(word);
    if (static_cast<size_t>(end - p) < len || std::strncmp(p, word, len) != 0) {
      return Fail("unknown literal");
    }
    p += len;
    return true;
  }

  bool ParseValue() {
    if (++depth > 256) return Fail("nesting too deep");
    SkipSpace();
    if (p >= end) return Fail("unexpected end of input");
    bool ok = false;
    switch (*p) {
      case '{':
        ok = ParseObject();
        break;
      case '[':
        ok = ParseArray();
        break;
      case '"':
        ok = ParseString();
        break;
      case 't':
        ok = ParseLiteral("true");
        break;
      case 'f':
        ok = ParseLiteral("false");
        break;
      case 'n':
        ok = ParseLiteral("null");
        break;
      default:
        ok = ParseNumber();
    }
    --depth;
    return ok;
  }

  bool ParseObject() {
    ++p;  // consume '{'
    SkipSpace();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!ParseString()) return Fail("expected object key");
      SkipSpace();
      if (p >= end || *p != ':') return Fail("expected ':'");
      ++p;
      if (!ParseValue()) return false;
      SkipSpace();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray() {
    ++p;  // consume '['
    SkipSpace();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    while (true) {
      if (!ParseValue()) return false;
      SkipSpace();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }
};

}  // namespace

bool JsonValidate(const std::string& text, std::string* error) {
  Parser parser{text.data(), text.data() + text.size(), text.data(), "", 0};
  bool ok = parser.ParseValue();
  if (ok) {
    parser.SkipSpace();
    if (parser.p != parser.end) {
      ok = parser.Fail("trailing characters after value");
    }
  }
  if (!ok && error != nullptr) *error = parser.error;
  return ok;
}

namespace {

// Returns the offset just past `"key":` or npos.
size_t FindFieldValue(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return std::string::npos;
  return at + needle.size();
}

}  // namespace

bool FindJsonNumberField(const std::string& line, const std::string& key,
                         double* out) {
  const size_t at = FindFieldValue(line, key);
  if (at == std::string::npos || at >= line.size()) return false;
  char* tail = nullptr;
  const double value = std::strtod(line.c_str() + at, &tail);
  if (tail == line.c_str() + at) return false;
  if (out != nullptr) *out = value;
  return true;
}

bool FindJsonStringField(const std::string& line, const std::string& key,
                         std::string* out) {
  size_t at = FindFieldValue(line, key);
  if (at == std::string::npos || at >= line.size() || line[at] != '"') {
    return false;
  }
  ++at;
  std::string value;
  while (at < line.size() && line[at] != '"') {
    if (line[at] == '\\' && at + 1 < line.size()) {
      value += line[at];
      ++at;
    }
    value += line[at];
    ++at;
  }
  if (at >= line.size()) return false;
  if (out != nullptr) *out = value;
  return true;
}

}  // namespace obs
}  // namespace hire
