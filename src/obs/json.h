#ifndef HIRE_OBS_JSON_H_
#define HIRE_OBS_JSON_H_

#include <string>

namespace hire {
namespace obs {

/// Escapes `text` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Does not add the surrounding quotes.
std::string JsonEscape(const std::string& text);

/// `text` escaped and wrapped in double quotes.
std::string JsonString(const std::string& text);

/// Formats a double as a JSON number with round-trip precision. Non-finite
/// values (which JSON cannot represent) are emitted as null.
std::string JsonNumber(double value);

/// Validates that `text` is one complete JSON value (object, array, string,
/// number, or literal) with nothing but whitespace after it. On failure
/// returns false and, when `error` is non-null, describes the first problem
/// with its byte offset.
bool JsonValidate(const std::string& text, std::string* error);

/// Scans a flat JSON object line for `"key":<number>` and returns the number
/// via `out`. Intended for telemetry JSONL post-processing (tests, tools);
/// it does a textual scan, not a full parse, so validate the line first.
bool FindJsonNumberField(const std::string& line, const std::string& key,
                         double* out);

/// Scans a flat JSON object line for `"key":"value"` and returns the raw
/// (still escaped) value via `out`.
bool FindJsonStringField(const std::string& line, const std::string& key,
                         std::string* out);

}  // namespace obs
}  // namespace hire

#endif  // HIRE_OBS_JSON_H_
