#include "obs/prometheus.h"

#include <cmath>

#include "obs/json.h"

namespace hire {
namespace obs {

const char kPrometheusContentType[] = "text/plain; version=0.0.4";

namespace {

bool LegalMetricChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// Prometheus numbers allow Inf/NaN spellings that JSON does not.
std::string PrometheusNumber(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  return JsonNumber(value);
}

}  // namespace

std::string PrometheusMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name[0] >= '0' && name[0] <= '9') out += '_';
  for (char c : name) out += LegalMetricChar(c) ? c : '_';
  if (out.empty()) out.push_back('_');
  return out;
}

std::string PrometheusEscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string PrometheusEscapeHelp(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string ToPrometheusText(const MetricsRegistry::Snapshot& snapshot) {
  std::string out;
  // # HELP carries the registry's dotted name so a scrape can be mapped back
  // to the JSON view even after sanitisation folded '.'/'-' into '_'.
  const auto header = [&out](const std::string& original,
                             const std::string& exported, const char* type) {
    out += "# HELP " + exported + " exported from " +
           PrometheusEscapeHelp(original) + "\n";
    out += "# TYPE " + exported + " " + type + "\n";
  };

  for (const auto& [name, value] : snapshot.counters) {
    const std::string exported = PrometheusMetricName(name);
    header(name, exported, "counter");
    out += exported + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string exported = PrometheusMetricName(name);
    header(name, exported, "gauge");
    out += exported + " " + PrometheusNumber(value) + "\n";
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    const std::string exported = PrometheusMetricName(name);
    header(name, exported, "histogram");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < histogram.upper_bounds.size(); ++i) {
      cumulative += histogram.bucket_counts[i];
      out += exported + "_bucket{le=\"" +
             PrometheusEscapeLabelValue(
                 PrometheusNumber(histogram.upper_bounds[i])) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    // The registry keeps overflow in a dedicated bucket; Prometheus folds it
    // into le="+Inf", which by the format's contract equals _count.
    cumulative += histogram.bucket_counts.back();
    out += exported + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
           "\n";
    out += exported + "_sum " + PrometheusNumber(histogram.sum) + "\n";
    out += exported + "_count " + std::to_string(histogram.count) + "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace hire
