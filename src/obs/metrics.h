#ifndef HIRE_OBS_METRICS_H_
#define HIRE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hire {
namespace obs {

/// Monotonic counter. Handles returned by MetricsRegistry are stable for the
/// process lifetime, so hot paths can cache the pointer and increment without
/// touching the registry lock.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  /// Rewinds to zero. Only epoch-style accumulators (kernel timers, tests)
  /// should use this; exported counters are otherwise monotonic.
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<uint64_t> value_{0};
};

namespace internal {
/// Doubles stored bit-packed in atomic<uint64_t>: portable and lock-free
/// where atomic<double> may not be.
uint64_t EncodeDoubleBits(double value);
double DecodeDoubleBits(uint64_t bits);
}  // namespace internal

/// Last-write-wins instantaneous value (loss, learning rate, queue depth).
class Gauge {
 public:
  void Set(double value) {
    bits_.store(internal::EncodeDoubleBits(value), std::memory_order_relaxed);
  }
  double Value() const {
    return internal::DecodeDoubleBits(bits_.load(std::memory_order_relaxed));
  }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<uint64_t> bits_{0};
};

/// Exponential bucket layout: bucket i spans (bound[i-1], bound[i]] with
/// bound[i] = first_bound * growth^i; values above the last bound land in a
/// dedicated overflow bucket, values <= first_bound in bucket 0.
struct HistogramOptions {
  double first_bound = 1e-6;
  double growth = 2.0;
  int num_buckets = 32;
};

/// Point-in-time copy of one histogram; subtractable and mergeable.
struct HistogramSnapshot {
  std::vector<double> upper_bounds;     // size num_buckets
  std::vector<uint64_t> bucket_counts;  // size num_buckets + 1 (overflow last)
  uint64_t count = 0;
  double sum = 0.0;

  /// Adds another snapshot's population (bucket layouts must match).
  void Merge(const HistogramSnapshot& other);

  /// Population recorded since `earlier` (same histogram, earlier in time).
  HistogramSnapshot Delta(const HistogramSnapshot& earlier) const;

  std::string ToJson() const;
};

/// Thread-safe histogram with lock-free recording.
class Histogram {
 public:
  void Record(double value);
  HistogramSnapshot Take() const;
  void Reset();
  const HistogramOptions& options() const { return options_; }

  /// Index of the bucket `value` falls into (num_buckets = overflow).
  int BucketIndex(double value) const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(const HistogramOptions& options);
  HistogramOptions options_;
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> counts_;  // num_buckets + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // double stored as bits, CAS-added
};

/// Process-wide namespace of named metrics. Lookup takes a mutex; the
/// returned handles are lock-free and never invalidated.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Returns the named metric, creating it on first use. Requesting an
  /// existing name with a different metric kind throws hire::CheckError.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          const HistogramOptions& options = {});

  /// Point-in-time copy of every registered metric.
  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /// Counters and histograms are differenced against `earlier`; gauges
    /// keep their current value.
    Snapshot Delta(const Snapshot& earlier) const;

    std::string ToJson() const;
  };

  Snapshot Take() const;

  /// Testing escape hatch: zeroes every counter and histogram (gauges keep
  /// their last value).
  void ResetForTest();

 private:
  MetricsRegistry() = default;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace hire

#endif  // HIRE_OBS_METRICS_H_
