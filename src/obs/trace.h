#ifndef HIRE_OBS_TRACE_H_
#define HIRE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>

namespace hire {
namespace obs {

/// Small, stable, per-thread integer id (1, 2, 3, ... in first-use order).
/// Used as the `tid` in trace events and log lines; far more readable than
/// std::thread::id.
int CurrentThreadId();

namespace internal {

/// Runtime on/off switch. Kept in an extern atomic so the disabled path of
/// HIRE_TRACE_SCOPE compiles down to one relaxed load and a branch.
extern std::atomic<bool> g_trace_enabled;

/// Nanoseconds on the steady clock (same timebase as span timestamps).
uint64_t NowNanos();

/// Appends one completed span to the calling thread's buffer.
void RecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns);

constexpr int kMaxSpanName = 48;

}  // namespace internal

/// Scoped-span tracer emitting Chrome trace-event JSON (load the file in
/// Perfetto or chrome://tracing). Spans are buffered per thread behind a
/// per-buffer mutex that is uncontended except during collection, so the
/// enabled hot path never takes a shared lock; the disabled hot path is a
/// single relaxed atomic load.
class Tracer {
 public:
  static bool Enabled() {
    return internal::g_trace_enabled.load(std::memory_order_relaxed);
  }

  /// Clears all buffered spans and starts recording.
  static void Start();

  /// Stops recording; buffered spans remain available for export.
  static void Stop();

  /// Drops all buffered spans (does not change the enabled state).
  static void Clear();

  /// Spans recorded since the last Start()/Clear() across all threads.
  static uint64_t TotalSpans();

  /// Spans discarded because a thread buffer hit its size cap.
  static uint64_t DroppedSpans();

  /// Serialises every buffered span as a Chrome trace-event JSON document:
  /// {"displayTimeUnit":"ms","traceEvents":[{"name":...,"ph":"X",...}]}.
  static std::string ToChromeTraceJson();

  /// Writes ToChromeTraceJson() to `path`. Throws hire::CheckError when the
  /// file cannot be written.
  static void WriteChromeTrace(const std::string& path);
};

/// Emits one completed span with explicit endpoints (timebase:
/// internal::NowNanos). Used where a scope cannot straddle the region, e.g.
/// backward-pass spans delimited by autograd hooks. No-op when disabled.
void EmitSpan(const char* name, uint64_t start_ns, uint64_t end_ns);
void EmitSpan(const std::string& name, uint64_t start_ns, uint64_t end_ns);

/// Nanosecond timestamp for use with EmitSpan.
inline uint64_t TraceNowNanos() { return internal::NowNanos(); }

/// RAII span: records [construction, destruction) under `name` on the
/// calling thread. When tracing is disabled, construction is one relaxed
/// atomic load and destruction one predictable branch.
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (!Tracer::Enabled()) return;
    Arm(name);
  }

  explicit TraceScope(const std::string& name) {
    if (!Tracer::Enabled()) return;
    Arm(name.c_str());
  }

  ~TraceScope() {
    if (!armed_) return;
    internal::RecordSpan(name_, start_, internal::NowNanos());
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  void Arm(const char* name) {
    // Copy the name: dynamic strings may die before the destructor runs.
    std::strncpy(name_, name, sizeof(name_) - 1);
    name_[sizeof(name_) - 1] = '\0';
    start_ = internal::NowNanos();
    armed_ = true;
  }

  bool armed_ = false;
  uint64_t start_ = 0;
  char name_[internal::kMaxSpanName] = {0};
};

}  // namespace obs
}  // namespace hire

#define HIRE_OBS_CONCAT_INNER(a, b) a##b
#define HIRE_OBS_CONCAT(a, b) HIRE_OBS_CONCAT_INNER(a, b)

/// Opens an RAII trace span covering the rest of the enclosing scope.
#define HIRE_TRACE_SCOPE(name) \
  ::hire::obs::TraceScope HIRE_OBS_CONCAT(hire_trace_scope_, __LINE__)(name)

#endif  // HIRE_OBS_TRACE_H_
