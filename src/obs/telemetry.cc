#include "obs/telemetry.h"

#include "obs/json.h"
#include "utils/check.h"

namespace hire {
namespace obs {

TelemetrySink& TelemetrySink::Global() {
  static TelemetrySink* sink = new TelemetrySink();
  return *sink;
}

TelemetrySink::~TelemetrySink() { Close(); }

void TelemetrySink::Open(const std::string& path, bool append) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path.c_str(), append ? "a" : "w");
  HIRE_CHECK(file_ != nullptr)
      << "cannot open telemetry output '" << path << "'";
}

bool TelemetrySink::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return file_ != nullptr;
}

void TelemetrySink::WriteLine(const std::string& json_object) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return;
  std::fwrite(json_object.data(), 1, json_object.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

void TelemetrySink::WriteStep(const StepTelemetry& step) {
  std::string line = "{\"type\":\"step\",\"source\":" +
                     JsonString(step.source) +
                     ",\"step\":" + std::to_string(step.step) +
                     ",\"total_steps\":" + std::to_string(step.total_steps) +
                     ",\"loss\":" + JsonNumber(step.loss) +
                     ",\"masked_mse\":" + JsonNumber(step.loss) +
                     ",\"grad_norm\":" + JsonNumber(step.grad_norm) +
                     ",\"lr\":" + JsonNumber(step.lr) +
                     ",\"lr_scale\":" + JsonNumber(step.lr_scale) +
                     ",\"wall_s\":" + JsonNumber(step.wall_seconds);
  if (step.has_kernel_delta) {
    line += ",\"kernels\":{";
    for (int i = 0; i < KernelTimers::kNumCategories; ++i) {
      const auto category = static_cast<KernelCategory>(i);
      if (i > 0) line += ",";
      line += JsonString(std::string(KernelTimers::Name(category)) + "_s") +
              ":" + JsonNumber(step.kernel_delta.Seconds(category));
    }
    line += "}";
  }
  line += "}";
  WriteLine(line);
}

void TelemetrySink::WriteServe(const ServeTelemetry& record) {
  WriteLine("{\"type\":\"serve\",\"user\":" + std::to_string(record.user) +
            ",\"items\":" + std::to_string(record.num_items) +
            ",\"latency_us\":" + JsonNumber(record.latency_us) +
            ",\"batch_users\":" + std::to_string(record.batch_users) +
            ",\"cache_hit\":" + std::string(record.cache_hit ? "1" : "0") +
            ",\"model_version\":" + std::to_string(record.model_version) +
            ",\"graph_version\":" + std::to_string(record.graph_version) +
            "}");
}

void TelemetrySink::WriteEvent(const std::string& name, int64_t step,
                               const TelemetryFields& fields) {
  std::string line = "{\"type\":\"event\",\"name\":" + JsonString(name) +
                     ",\"step\":" + std::to_string(step);
  for (const auto& [key, json_value] : fields) {
    line += ",";
    line += JsonString(key);
    line += ":";
    line += json_value;
  }
  line += "}";
  WriteLine(line);
}

void TelemetrySink::WriteMetricsSnapshot(
    const MetricsRegistry::Snapshot& snapshot) {
  WriteLine("{\"type\":\"metrics_snapshot\",\"metrics\":" + snapshot.ToJson() +
            "}");
}

void TelemetrySink::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace obs
}  // namespace hire
