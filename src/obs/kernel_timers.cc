#include "obs/kernel_timers.h"

#include <sstream>

#include "obs/metrics.h"

namespace hire {

namespace {

constexpr const char* kNames[KernelTimers::kNumCategories] = {
    "matmul",    "softmax",   "attention", "optim",
    "layernorm", "embedding", "sampling",  "ckpt-io",
    "infer.fused-attention", "infer.fused-gemm", "infer.arena"};

// Registry counter names use identifier-safe spellings.
constexpr const char* kCounterNames[KernelTimers::kNumCategories] = {
    "kernel.matmul_nanos",    "kernel.softmax_nanos",
    "kernel.attention_nanos", "kernel.optimizer_nanos",
    "kernel.layernorm_nanos", "kernel.embedding_nanos",
    "kernel.sampling_nanos",  "kernel.checkpoint_io_nanos",
    "kernel.infer.fused_attention_nanos", "kernel.infer.fused_gemm_nanos",
    "kernel.infer.arena_nanos"};

std::array<obs::Counter*, KernelTimers::kNumCategories>& Totals() {
  static std::array<obs::Counter*, KernelTimers::kNumCategories> counters = [] {
    std::array<obs::Counter*, KernelTimers::kNumCategories> handles{};
    for (int i = 0; i < KernelTimers::kNumCategories; ++i) {
      handles[static_cast<size_t>(i)] =
          obs::MetricsRegistry::Global().GetCounter(kCounterNames[i]);
    }
    return handles;
  }();
  return counters;
}

}  // namespace

const char* KernelTimers::Name(KernelCategory category) {
  return kNames[static_cast<int>(category)];
}

std::string KernelTimers::Snapshot::ToString() const {
  std::ostringstream out;
  for (int i = 0; i < kNumCategories; ++i) {
    if (i > 0) out << " | ";
    out << kNames[i] << " " << static_cast<double>(nanos[i]) * 1e-9 << "s";
  }
  return out.str();
}

void KernelTimers::Add(KernelCategory category, uint64_t nanos) {
  Totals()[static_cast<size_t>(static_cast<int>(category))]->Increment(nanos);
}

KernelTimers::Snapshot KernelTimers::Take() {
  Snapshot snapshot;
  const auto& totals = Totals();
  for (int i = 0; i < kNumCategories; ++i) {
    snapshot.nanos[i] = totals[static_cast<size_t>(i)]->Value();
  }
  return snapshot;
}

void KernelTimers::Reset() {
  for (obs::Counter* counter : Totals()) counter->Reset();
}

}  // namespace hire
