#include "obs/metrics.h"

#include <algorithm>
#include <cstring>

#include "obs/json.h"
#include "utils/check.h"

namespace hire {
namespace obs {

namespace internal {

uint64_t EncodeDoubleBits(double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double DecodeDoubleBits(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(const HistogramOptions& options)
    : options_(options),
      counts_(static_cast<size_t>(options.num_buckets) + 1) {
  HIRE_CHECK_GT(options_.num_buckets, 0);
  HIRE_CHECK_GT(options_.first_bound, 0.0);
  HIRE_CHECK_GT(options_.growth, 1.0);
  bounds_.reserve(static_cast<size_t>(options_.num_buckets));
  double bound = options_.first_bound;
  for (int i = 0; i < options_.num_buckets; ++i) {
    bounds_.push_back(bound);
    bound *= options_.growth;
  }
}

int Histogram::BucketIndex(double value) const {
  // First bucket whose upper bound admits `value`; the overflow bucket
  // (index num_buckets) catches everything beyond the last bound.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<int>(it - bounds_.begin());
}

void Histogram::Record(double value) {
  counts_[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS loop: std::atomic<double>::fetch_add is C++20 but not universally
  // lock-free; bit-packed doubles keep the hot path portable.
  uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  while (true) {
    const double current = internal::DecodeDoubleBits(observed);
    const uint64_t desired = internal::EncodeDoubleBits(current + value);
    if (sum_bits_.compare_exchange_weak(observed, desired,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

HistogramSnapshot Histogram::Take() const {
  HistogramSnapshot snapshot;
  snapshot.upper_bounds = bounds_;
  snapshot.bucket_counts.reserve(counts_.size());
  for (const auto& bucket : counts_) {
    snapshot.bucket_counts.push_back(bucket.load(std::memory_order_relaxed));
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = internal::DecodeDoubleBits(sum_bits_.load(std::memory_order_relaxed));
  return snapshot;
}

void Histogram::Reset() {
  for (auto& bucket : counts_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  HIRE_CHECK(upper_bounds == other.upper_bounds)
      << "merging histograms with different bucket layouts";
  HIRE_CHECK_EQ(bucket_counts.size(), other.bucket_counts.size());
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    bucket_counts[i] += other.bucket_counts[i];
  }
  count += other.count;
  sum += other.sum;
}

HistogramSnapshot HistogramSnapshot::Delta(
    const HistogramSnapshot& earlier) const {
  HIRE_CHECK(upper_bounds == earlier.upper_bounds)
      << "differencing histograms with different bucket layouts";
  HistogramSnapshot delta = *this;
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    HIRE_CHECK_GE(delta.bucket_counts[i], earlier.bucket_counts[i]);
    delta.bucket_counts[i] -= earlier.bucket_counts[i];
  }
  delta.count -= earlier.count;
  delta.sum -= earlier.sum;
  return delta;
}

std::string HistogramSnapshot::ToJson() const {
  std::string out = "{\"count\":" + std::to_string(count) +
                    ",\"sum\":" + JsonNumber(sum) + ",\"buckets\":[";
  for (size_t i = 0; i < upper_bounds.size(); ++i) {
    if (i > 0) out += ",";
    out += "[" + JsonNumber(upper_bounds[i]) + "," +
           std::to_string(bucket_counts[i]) + "]";
  }
  out += "],\"overflow\":" + std::to_string(bucket_counts.back()) + "}";
  return out;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  HIRE_CHECK(gauges_.find(name) == gauges_.end() &&
             histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered with a different kind";
  auto& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter());
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  HIRE_CHECK(counters_.find(name) == counters_.end() &&
             histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered with a different kind";
  auto& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge());
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const HistogramOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  HIRE_CHECK(counters_.find(name) == counters_.end() &&
             gauges_.find(name) == gauges_.end())
      << "metric '" << name << "' already registered with a different kind";
  auto& slot = histograms_[name];
  if (slot == nullptr) slot.reset(new Histogram(options));
  return slot.get();
}

MetricsRegistry::Snapshot MetricsRegistry::Take() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Take();
  }
  return snapshot;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry::Snapshot MetricsRegistry::Snapshot::Delta(
    const Snapshot& earlier) const {
  Snapshot delta = *this;
  for (auto& [name, value] : delta.counters) {
    const auto it = earlier.counters.find(name);
    if (it != earlier.counters.end() && it->second <= value) {
      value -= it->second;
    }
  }
  for (auto& [name, histogram] : delta.histograms) {
    const auto it = earlier.histograms.find(name);
    if (it != earlier.histograms.end()) {
      histogram = histogram.Delta(it->second);
    }
  }
  return delta;
}

std::string MetricsRegistry::Snapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ",";
    first = false;
    out += JsonString(name) + ":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ",";
    first = false;
    out += JsonString(name) + ":" + JsonNumber(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms) {
    if (!first) out += ",";
    first = false;
    out += JsonString(name) + ":" + histogram.ToJson();
  }
  out += "}}";
  return out;
}

}  // namespace obs
}  // namespace hire
