#ifndef HIRE_OBS_TELEMETRY_H_
#define HIRE_OBS_TELEMETRY_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/kernel_timers.h"
#include "obs/metrics.h"

namespace hire {
namespace obs {

/// One structured training-step record. Deterministic fields (step, loss,
/// grad_norm, lr, lr_scale) replay bit-identically across --resume; timing
/// fields (wall_seconds, kernel deltas) naturally vary run to run.
struct StepTelemetry {
  /// Which trainer produced the record ("hire" or a baseline model name).
  std::string source = "hire";
  int64_t step = 0;        // 1-based index of the completed step
  int64_t total_steps = 0;
  double loss = 0.0;       // batch-mean masked MSE
  double grad_norm = 0.0;  // pre-clip global gradient norm
  double lr = 0.0;         // effective learning rate used for the update
  double lr_scale = 1.0;   // divergence-guard backoff multiplier
  double wall_seconds = 0.0;
  /// Kernel-time accumulated since the previous telemetry record.
  KernelTimers::Snapshot kernel_delta;
  bool has_kernel_delta = false;
};

/// One served rating request, written by the online serving subsystem as a
/// {"type":"serve",...} JSONL record (tools/validate_telemetry checks the
/// stream with --min-serve).
struct ServeTelemetry {
  int64_t user = 0;
  int64_t num_items = 0;        // query items in the request
  double latency_us = 0.0;      // enqueue -> response
  int64_t batch_users = 0;      // distinct users in the shared context
  bool cache_hit = false;       // context plan came from the LRU cache
  int64_t model_version = 0;
  int64_t graph_version = 0;
};

/// Pre-rendered JSON values keyed by field name; values must already be
/// valid JSON fragments (use JsonString/JsonNumber from obs/json.h).
using TelemetryFields = std::vector<std::pair<std::string, std::string>>;

/// Process-wide JSONL telemetry writer. One JSON object per line:
///   {"type":"step",...}              per logged training step
///   {"type":"event","name":...}      discrete events (checkpoint written,
///                                    non-finite step skipped, rollback, ...)
///   {"type":"metrics_snapshot",...}  full registry export (run end)
/// Writes are serialised by a mutex and flushed per line so a crash loses at
/// most the line being written. All write calls are no-ops until Open().
class TelemetrySink {
 public:
  static TelemetrySink& Global();

  /// Starts writing to `path`. With `append`, existing records are kept —
  /// used by --resume so a resumed run extends the original stream. Throws
  /// hire::CheckError when the file cannot be opened.
  void Open(const std::string& path, bool append = false);

  bool enabled() const;

  void WriteStep(const StepTelemetry& step);
  void WriteServe(const ServeTelemetry& record);
  void WriteEvent(const std::string& name, int64_t step,
                  const TelemetryFields& fields = {});
  void WriteMetricsSnapshot(const MetricsRegistry::Snapshot& snapshot);

  /// Writes one raw, already-serialised JSON object line.
  void WriteLine(const std::string& json_object);

  void Close();

  ~TelemetrySink();

 private:
  TelemetrySink() = default;
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
};

}  // namespace obs
}  // namespace hire

#endif  // HIRE_OBS_TELEMETRY_H_
