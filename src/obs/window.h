#ifndef HIRE_OBS_WINDOW_H_
#define HIRE_OBS_WINDOW_H_

#include "obs/metrics.h"

namespace hire {
namespace obs {

/// Estimates the q-quantile (q in [0, 1]) of the population captured in a
/// histogram snapshot by linear interpolation inside the bucket holding the
/// target rank (bucket 0 interpolates from 0). Values that landed in the
/// overflow bucket are attributed to the last finite bound — the estimate
/// saturates there rather than inventing a tail. Returns 0 for an empty
/// snapshot.
double HistogramQuantile(const HistogramSnapshot& snapshot, double q);

/// Turns successive cumulative snapshots of one histogram into per-window
/// deltas: Advance(current) returns the population recorded since the
/// previous Advance call (the first call returns `current` itself, i.e. the
/// window since process start). Rolling-window percentile gauges are
/// computed from these deltas on a background tick.
class HistogramWindow {
 public:
  HistogramSnapshot Advance(const HistogramSnapshot& current);

 private:
  bool has_last_ = false;
  HistogramSnapshot last_;
};

}  // namespace obs
}  // namespace hire

#endif  // HIRE_OBS_WINDOW_H_
