#include "obs/window.h"

#include <algorithm>

namespace hire {
namespace obs {

double HistogramQuantile(const HistogramSnapshot& snapshot, double q) {
  if (snapshot.count == 0 || snapshot.upper_bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, ceiling) in the sorted
  // population; q=0 maps to the first observation.
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(snapshot.count) + 0.5));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < snapshot.upper_bounds.size(); ++i) {
    const uint64_t in_bucket = snapshot.bucket_counts[i];
    if (cumulative + in_bucket >= target) {
      const double lower = i == 0 ? 0.0 : snapshot.upper_bounds[i - 1];
      const double upper = snapshot.upper_bounds[i];
      const double fraction =
          in_bucket > 0
              ? static_cast<double>(target - cumulative) /
                    static_cast<double>(in_bucket)
              : 1.0;
      return lower + (upper - lower) * fraction;
    }
    cumulative += in_bucket;
  }
  // Target rank sits in the overflow bucket: saturate at the last bound.
  return snapshot.upper_bounds.back();
}

HistogramSnapshot HistogramWindow::Advance(const HistogramSnapshot& current) {
  HistogramSnapshot delta =
      has_last_ && last_.upper_bounds == current.upper_bounds
          ? current.Delta(last_)
          : current;
  last_ = current;
  has_last_ = true;
  return delta;
}

}  // namespace obs
}  // namespace hire
