#include "nn/layer_norm.h"

#include "autograd/ops.h"
#include "utils/check.h"

namespace hire {
namespace nn {

LayerNorm::LayerNorm(int64_t dim, float epsilon)
    : dim_(dim), epsilon_(epsilon) {
  HIRE_CHECK_GT(dim, 0);
  gamma_ = RegisterParameter("gamma", Tensor::Ones({dim}));
  beta_ = RegisterParameter("beta", Tensor::Zeros({dim}));
}

ag::Variable LayerNorm::Forward(const ag::Variable& x) const {
  HIRE_CHECK_EQ(x.value().shape(-1), dim_)
      << "LayerNorm expects last dim " << dim_ << ", got "
      << x.value().ShapeString();
  return ag::LayerNorm(x, gamma_, beta_, epsilon_);
}

}  // namespace nn
}  // namespace hire
