#ifndef HIRE_NN_MULTI_HEAD_SELF_ATTENTION_H_
#define HIRE_NN_MULTI_HEAD_SELF_ATTENTION_H_

#include <cstdint>
#include <memory>

#include "autograd/variable.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/random.h"

namespace hire {
namespace nn {

/// Configuration for a multi-head self-attention layer (paper Eq. 1-4).
struct MhsaConfig {
  /// Input/output embedding dimension d (= d_o).
  int64_t embed_dim = 0;
  /// Number of heads l.
  int64_t num_heads = 1;
  /// Per-head key/query/value dimension d_k = d_v. When 0, defaults to
  /// embed_dim / num_heads.
  int64_t head_dim = 0;
};

/// Multi-head self-attention, MHSA(X) = [SA_1(X) || ... || SA_l(X)] W_O.
///
/// Forward accepts a batch of token sequences [B, t, d]; each batch element
/// is attended independently with shared weights, which is exactly how the
/// paper applies one parameter-sharing MHSA across item views (MBU), user
/// views (MBI) and user-item pairs (MBA) in parallel.
///
/// The layer is permutation equivariant in the token axis (paper Eq. 5);
/// tests/nn_test.cc verifies this property.
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(const MhsaConfig& config, Rng* rng);

  /// x: [B, t, d] -> [B, t, d].
  ag::Variable Forward(const ag::Variable& x) const;

  /// When enabled, the softmax attention weights of the most recent Forward
  /// are retained (detached) for inspection; shape [B, l, t, t].
  void EnableAttentionCapture(bool enable) { capture_attention_ = enable; }

  /// Last captured attention weights; empty if capture is disabled or
  /// Forward has not run.
  const Tensor& captured_attention() const { return captured_attention_; }

  const MhsaConfig& config() const { return config_; }

 private:
  MhsaConfig config_;
  std::unique_ptr<Linear> query_;
  std::unique_ptr<Linear> key_;
  std::unique_ptr<Linear> value_;
  std::unique_ptr<Linear> output_;
  bool capture_attention_ = false;
  mutable Tensor captured_attention_;
};

}  // namespace nn
}  // namespace hire

#endif  // HIRE_NN_MULTI_HEAD_SELF_ATTENTION_H_
