#include "nn/mlp.h"

#include "autograd/ops.h"
#include "utils/check.h"

namespace hire {
namespace nn {

ag::Variable ApplyActivation(const ag::Variable& x, Activation activation) {
  switch (activation) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return ag::Relu(x);
    case Activation::kSigmoid:
      return ag::Sigmoid(x);
    case Activation::kTanh:
      return ag::Tanh(x);
  }
  HIRE_CHECK(false) << "unknown activation";
  return x;
}

Mlp::Mlp(std::vector<int64_t> dims, Activation hidden_activation, Rng* rng,
         Activation output_activation)
    : hidden_activation_(hidden_activation),
      output_activation_(output_activation) {
  HIRE_CHECK_GE(dims.size(), 2u) << "Mlp needs at least input and output dims";
  layers_.reserve(dims.size() - 1);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterSubmodule("layer" + std::to_string(i), layers_.back().get());
  }
}

ag::Variable Mlp::Forward(const ag::Variable& x) const {
  ag::Variable h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) {
      h = ApplyActivation(h, hidden_activation_);
    }
  }
  return ApplyActivation(h, output_activation_);
}

}  // namespace nn
}  // namespace hire
