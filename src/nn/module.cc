#include "nn/module.h"

#include "utils/check.h"

namespace hire {
namespace nn {

std::vector<ag::Variable> Module::Parameters() const {
  std::vector<ag::Variable> out;
  for (const auto& [name, variable] : NamedParameters()) {
    out.push_back(variable);
  }
  return out;
}

std::vector<std::pair<std::string, ag::Variable>> Module::NamedParameters()
    const {
  std::vector<std::pair<std::string, ag::Variable>> out;
  CollectNamedParameters("", &out);
  return out;
}

void Module::CollectNamedParameters(
    const std::string& prefix,
    std::vector<std::pair<std::string, ag::Variable>>* out) const {
  for (const auto& [name, variable] : params_) {
    out->emplace_back(prefix + name, variable);
  }
  for (const auto& [name, module] : submodules_) {
    module->CollectNamedParameters(prefix + name + ".", out);
  }
}

void Module::ZeroGrad() {
  for (ag::Variable& parameter : Parameters()) {
    parameter.ZeroGrad();
  }
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, module] : submodules_) {
    module->SetTraining(training);
  }
}

int64_t Module::NumParameters() const {
  int64_t count = 0;
  for (const ag::Variable& parameter : Parameters()) {
    count += parameter.size();
  }
  return count;
}

ag::Variable Module::RegisterParameter(std::string name, Tensor init) {
  ag::Variable parameter(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), parameter);
  return parameter;
}

void Module::RegisterSubmodule(std::string name, Module* module) {
  HIRE_CHECK(module != nullptr);
  submodules_.emplace_back(std::move(name), module);
}

}  // namespace nn
}  // namespace hire
