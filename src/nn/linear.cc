#include "nn/linear.h"

#include "autograd/ops.h"
#include "nn/init.h"
#include "utils/check.h"

namespace hire {
namespace nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  HIRE_CHECK(rng != nullptr);
  weight_ =
      RegisterParameter("weight", XavierUniform(in_features, out_features, rng));
  if (bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_features}));
  }
}

ag::Variable Linear::Forward(const ag::Variable& x) const {
  HIRE_CHECK_EQ(x.value().shape(-1), in_features_)
      << "Linear expects last dim " << in_features_ << ", got "
      << x.value().ShapeString();

  std::vector<int64_t> out_shape = x.value().shape();
  out_shape.back() = out_features_;

  ag::Variable flat = ag::Reshape(x, {-1, in_features_});
  ag::Variable y = ag::MatMul(flat, weight_);
  if (bias_.defined()) {
    y = ag::AddBias(y, bias_);
  }
  return ag::Reshape(y, std::move(out_shape));
}

}  // namespace nn
}  // namespace hire
