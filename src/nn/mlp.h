#ifndef HIRE_NN_MLP_H_
#define HIRE_NN_MLP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "autograd/variable.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/random.h"

namespace hire {
namespace nn {

/// Hidden-layer activation for Mlp.
enum class Activation {
  kNone,
  kRelu,
  kSigmoid,
  kTanh,
};

/// Multi-layer perceptron: Linear -> activation -> ... -> Linear. Used by
/// the decoder and by the CF baselines (NeuMF, Wide&Deep, DeepFM, AFN).
class Mlp : public Module {
 public:
  /// `dims` lists layer widths, e.g. {64, 32, 1} builds 64->32->1.
  /// `hidden_activation` is applied between layers; `output_activation`
  /// after the final layer.
  Mlp(std::vector<int64_t> dims, Activation hidden_activation, Rng* rng,
      Activation output_activation = Activation::kNone);

  /// x: [..., dims.front()] -> [..., dims.back()].
  ag::Variable Forward(const ag::Variable& x) const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation hidden_activation_;
  Activation output_activation_;
};

/// Applies the given activation (kNone is identity).
ag::Variable ApplyActivation(const ag::Variable& x, Activation activation);

}  // namespace nn
}  // namespace hire

#endif  // HIRE_NN_MLP_H_
