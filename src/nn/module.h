#ifndef HIRE_NN_MODULE_H_
#define HIRE_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "tensor/tensor.h"

namespace hire {
namespace nn {

/// Base class for neural-network building blocks. A Module owns named
/// parameters (ag::Variable leaves with requires_grad) and registers
/// submodules, exposing the flattened parameter list to optimisers and the
/// serializer.
///
/// Subclasses register parameters/submodules in their constructor and
/// implement a Forward method with whatever signature fits the layer.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its submodules, depth-first.
  std::vector<ag::Variable> Parameters() const;

  /// Parameters with hierarchical dotted names ("encoder.weight").
  std::vector<std::pair<std::string, ag::Variable>> NamedParameters() const;

  /// Clears gradients on every parameter.
  void ZeroGrad();

  /// Toggles training mode (dropout etc.) recursively.
  void SetTraining(bool training);

  bool training() const { return training_; }

  /// Total number of scalar parameters.
  int64_t NumParameters() const;

 protected:
  /// Creates and registers a trainable parameter initialised to `init`.
  ag::Variable RegisterParameter(std::string name, Tensor init);

  /// Registers a submodule; `module` must outlive this object (it is
  /// normally a data member of the subclass).
  void RegisterSubmodule(std::string name, Module* module);

 private:
  void CollectNamedParameters(
      const std::string& prefix,
      std::vector<std::pair<std::string, ag::Variable>>* out) const;

  std::vector<std::pair<std::string, ag::Variable>> params_;
  std::vector<std::pair<std::string, Module*>> submodules_;
  bool training_ = true;
};

}  // namespace nn
}  // namespace hire

#endif  // HIRE_NN_MODULE_H_
