#include "nn/multi_head_self_attention.h"

#include <cmath>
#include <memory>

#include "autograd/ops.h"
#include "obs/trace.h"
#include "utils/check.h"
#include "utils/stopwatch.h"

namespace hire {
namespace nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(const MhsaConfig& config,
                                               Rng* rng)
    : config_(config) {
  HIRE_CHECK_GT(config_.embed_dim, 0);
  HIRE_CHECK_GT(config_.num_heads, 0);
  if (config_.head_dim == 0) {
    HIRE_CHECK_EQ(config_.embed_dim % config_.num_heads, 0)
        << "embed_dim must divide evenly across heads when head_dim is "
           "defaulted";
    config_.head_dim = config_.embed_dim / config_.num_heads;
  }
  const int64_t inner = config_.num_heads * config_.head_dim;
  query_ = std::make_unique<Linear>(config_.embed_dim, inner, rng);
  key_ = std::make_unique<Linear>(config_.embed_dim, inner, rng);
  value_ = std::make_unique<Linear>(config_.embed_dim, inner, rng);
  output_ = std::make_unique<Linear>(inner, config_.embed_dim, rng);
  RegisterSubmodule("query", query_.get());
  RegisterSubmodule("key", key_.get());
  RegisterSubmodule("value", value_.get());
  RegisterSubmodule("output", output_.get());
}

ag::Variable MultiHeadSelfAttention::Forward(const ag::Variable& x) const {
  ScopedKernelTimer timer(KernelCategory::kAttention);
  HIRE_TRACE_SCOPE("mhsa_forward");
  HIRE_CHECK_EQ(x.value().dim(), 3)
      << "MHSA expects [batch, tokens, dim], got " << x.value().ShapeString();
  const int64_t batch = x.value().shape(0);
  const int64_t tokens = x.value().shape(1);
  HIRE_CHECK_EQ(x.value().shape(2), config_.embed_dim);
  const int64_t heads = config_.num_heads;
  const int64_t head_dim = config_.head_dim;

  // Backward-span bracket: the hook on the *input* runs last in backward
  // (records the span), the hook on the *output* runs first (stamps the
  // start). Only attached while tracing, as the hooks deep-copy values.
  ag::Variable input = x;
  std::shared_ptr<uint64_t> backward_start;
  if (obs::Tracer::Enabled() && x.requires_grad()) {
    backward_start = std::make_shared<uint64_t>(0);
    auto start = backward_start;
    input = ag::WithBackwardHook(x, [start] {
      obs::EmitSpan("mhsa_backward", *start, obs::TraceNowNanos());
    });
  }

  // Project and split into heads: [B, t, l*dk] -> [B*l, t, dk].
  auto split_heads = [&](const ag::Variable& proj) {
    ag::Variable reshaped =
        ag::Reshape(proj, {batch, tokens, heads, head_dim});
    ag::Variable permuted = ag::Permute(reshaped, {0, 2, 1, 3});
    return ag::Reshape(permuted, {batch * heads, tokens, head_dim});
  };

  ag::Variable q = split_heads(query_->Forward(input));
  ag::Variable k = split_heads(key_->Forward(input));
  ag::Variable v = split_heads(value_->Forward(input));

  // Attention weights A = softmax(QK^T / sqrt(d_k)): [B*l, t, t].
  ag::Variable scores = ag::BatchedMatMulTransposedB(q, k);
  scores = ag::MulScalar(
      scores, 1.0f / std::sqrt(static_cast<float>(head_dim)));
  ag::Variable attention = ag::Softmax(scores);

  if (capture_attention_) {
    captured_attention_ =
        attention.value().Reshape({batch, heads, tokens, tokens});
  }

  // Fused values: [B*l, t, dv] -> [B, t, l*dv] -> W_O.
  ag::Variable fused = ag::BatchedMatMul(attention, v);
  fused = ag::Reshape(fused, {batch, heads, tokens, head_dim});
  fused = ag::Permute(fused, {0, 2, 1, 3});
  fused = ag::Reshape(fused, {batch, tokens, heads * head_dim});
  ag::Variable out = output_->Forward(fused);
  if (backward_start != nullptr && out.requires_grad()) {
    auto start = backward_start;
    out = ag::WithBackwardHook(
        out, [start] { *start = obs::TraceNowNanos(); });
  }
  return out;
}

}  // namespace nn
}  // namespace hire
