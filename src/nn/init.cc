#include "nn/init.h"

#include <cmath>

#include "utils/check.h"

namespace hire {
namespace nn {

Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng* rng) {
  HIRE_CHECK_GT(fan_in, 0);
  HIRE_CHECK_GT(fan_out, 0);
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return RandomUniform({fan_in, fan_out}, -limit, limit, rng);
}

Tensor HeNormal(int64_t fan_in, int64_t fan_out, Rng* rng) {
  HIRE_CHECK_GT(fan_in, 0);
  HIRE_CHECK_GT(fan_out, 0);
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return RandomNormal({fan_in, fan_out}, 0.0f, stddev, rng);
}

Tensor EmbeddingInit(int64_t rows, int64_t width, Rng* rng) {
  HIRE_CHECK_GT(rows, 0);
  HIRE_CHECK_GT(width, 0);
  const float stddev = 1.0f / std::sqrt(static_cast<float>(width));
  return RandomNormal({rows, width}, 0.0f, stddev, rng);
}

}  // namespace nn
}  // namespace hire
