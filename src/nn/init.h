#ifndef HIRE_NN_INIT_H_
#define HIRE_NN_INIT_H_

#include <cstdint>
#include <vector>

#include "tensor/random.h"
#include "tensor/tensor.h"

namespace hire {
namespace nn {

/// Glorot/Xavier uniform initialisation for a [fan_in, fan_out] weight.
Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng* rng);

/// He/Kaiming normal initialisation for ReLU stacks.
Tensor HeNormal(int64_t fan_in, int64_t fan_out, Rng* rng);

/// Small-scale normal initialisation for embedding tables [rows, width].
Tensor EmbeddingInit(int64_t rows, int64_t width, Rng* rng);

}  // namespace nn
}  // namespace hire

#endif  // HIRE_NN_INIT_H_
