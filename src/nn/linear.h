#ifndef HIRE_NN_LINEAR_H_
#define HIRE_NN_LINEAR_H_

#include <cstdint>

#include "autograd/variable.h"
#include "nn/module.h"
#include "tensor/random.h"

namespace hire {
namespace nn {

/// Affine map y = x W + b applied to the last axis of x. Inputs of any rank
/// are supported; leading axes are treated as batch dimensions.
class Linear : public Module {
 public:
  /// Creates a layer mapping `in_features` -> `out_features`, Xavier
  /// initialised from `rng`. `bias` adds a learnable offset.
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool bias = true);

  /// x: [..., in_features] -> [..., out_features].
  ag::Variable Forward(const ag::Variable& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  ag::Variable weight_;  // [in, out]
  ag::Variable bias_;    // [out] or undefined
};

}  // namespace nn
}  // namespace hire

#endif  // HIRE_NN_LINEAR_H_
