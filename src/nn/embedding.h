#ifndef HIRE_NN_EMBEDDING_H_
#define HIRE_NN_EMBEDDING_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "nn/module.h"
#include "tensor/random.h"

namespace hire {
namespace nn {

/// Learnable lookup table mapping categorical ids to dense vectors. This is
/// the library's realisation of the paper's per-attribute linear transforms
/// f_U^k, f_I^k and f_R (Eq. 7-9): multiplying a one-hot encoding by a weight
/// matrix is exactly a row lookup.
class Embedding : public Module {
 public:
  /// `num_categories` rows of width `dim`, small-normal initialised.
  Embedding(int64_t num_categories, int64_t dim, Rng* rng);

  /// Gathers rows by id. Index -1 yields a zero row (masked rating) and
  /// receives no gradient. Output: [indices.size(), dim].
  ag::Variable Forward(const std::vector<int64_t>& indices) const;

  int64_t num_categories() const { return num_categories_; }
  int64_t dim() const { return dim_; }

 private:
  int64_t num_categories_;
  int64_t dim_;
  ag::Variable table_;  // [num_categories, dim]
};

}  // namespace nn
}  // namespace hire

#endif  // HIRE_NN_EMBEDDING_H_
