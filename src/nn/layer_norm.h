#ifndef HIRE_NN_LAYER_NORM_H_
#define HIRE_NN_LAYER_NORM_H_

#include <cstdint>

#include "autograd/variable.h"
#include "nn/module.h"

namespace hire {
namespace nn {

/// Layer normalisation over the last axis with learnable gain and offset.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float epsilon = 1e-5f);

  /// x: [..., dim] -> same shape.
  ag::Variable Forward(const ag::Variable& x) const;

 private:
  int64_t dim_;
  float epsilon_;
  ag::Variable gamma_;  // [dim]
  ag::Variable beta_;   // [dim]
};

}  // namespace nn
}  // namespace hire

#endif  // HIRE_NN_LAYER_NORM_H_
