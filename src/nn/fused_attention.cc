#include "nn/fused_attention.h"

#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "tensor/ops.h"
#include "utils/check.h"
#include "utils/cost_model.h"
#include "utils/parallel.h"
#include "utils/stopwatch.h"

namespace hire {
namespace nn {

namespace {

// Compile-time-specialised clone of ops::OnlineSoftmaxWeightedSumInto for
// one (batch, head) sequence: q/k/v share the QKV buffer's token stride,
// the output is written head-merged. The constant trip count lets the
// compiler fully unroll the dot product and the accumulator updates; the
// operation order is identical to the generic kernel (float additions are
// never reassociated without -ffast-math), so specialised and fallback
// results are bitwise equal.
template <int kDim>
void AttendSequenceFixed(const float* q, const float* k, const float* v,
                         int64_t qkv_stride, float* out, int64_t out_stride,
                         int64_t tokens, float scale) {
  for (int64_t i = 0; i < tokens; ++i) {
    const float* qi = q + i * qkv_stride;
    float* oi = out + i * out_stride;
    for (int c = 0; c < kDim; ++c) oi[c] = 0.0f;  // see the generic kernel
    float m = -std::numeric_limits<float>::infinity();
    double mass = 0.0;
    for (int64_t j = 0; j < tokens; ++j) {
      const float* kj = k + j * qkv_stride;
      float dot = 0.0f;
      for (int p = 0; p < kDim; ++p) dot += qi[p] * kj[p];
      const float s = dot * scale;
      if (s > m) {
        const float rescale = std::exp(m - s);
        for (int c = 0; c < kDim; ++c) oi[c] *= rescale;
        mass *= rescale;
        m = s;
      }
      const float w = std::exp(s - m);
      mass += w;
      const float* vj = v + j * qkv_stride;
      for (int c = 0; c < kDim; ++c) oi[c] += w * vj[c];
    }
    const float inv = static_cast<float>(1.0 / mass);
    for (int c = 0; c < kDim; ++c) oi[c] *= inv;
  }
}

void AttendSequence(int64_t head_dim, const float* q, const float* k,
                    const float* v, int64_t qkv_stride, float* out,
                    int64_t out_stride, int64_t tokens, float scale) {
  switch (head_dim) {
    case 2:
      AttendSequenceFixed<2>(q, k, v, qkv_stride, out, out_stride, tokens,
                             scale);
      return;
    case 4:
      AttendSequenceFixed<4>(q, k, v, qkv_stride, out, out_stride, tokens,
                             scale);
      return;
    case 8:
      AttendSequenceFixed<8>(q, k, v, qkv_stride, out, out_stride, tokens,
                             scale);
      return;
    case 16:
      AttendSequenceFixed<16>(q, k, v, qkv_stride, out, out_stride, tokens,
                              scale);
      return;
    default:
      ops::OnlineSoftmaxWeightedSumInto(q, qkv_stride, k, qkv_stride, v,
                                        qkv_stride, out, out_stride, tokens,
                                        head_dim, scale);
  }
}

const Tensor& FindParameter(
    const std::vector<std::pair<std::string, ag::Variable>>& params,
    const std::string& name) {
  for (const auto& [param_name, variable] : params) {
    if (param_name == name) return variable.value();
  }
  HIRE_CHECK(false) << "missing MHSA parameter " << name;
  // Unreachable; HIRE_CHECK throws.
  static const Tensor* kEmpty = new Tensor();
  return *kEmpty;
}

}  // namespace

FusedAttentionWeights PackAttentionWeights(
    const MultiHeadSelfAttention& mhsa) {
  const auto params = mhsa.NamedParameters();
  const MhsaConfig& config = mhsa.config();
  return PackAttentionWeights(
      config.embed_dim, config.num_heads, config.head_dim,
      FindParameter(params, "query.weight"), FindParameter(params, "query.bias"),
      FindParameter(params, "key.weight"), FindParameter(params, "key.bias"),
      FindParameter(params, "value.weight"), FindParameter(params, "value.bias"),
      FindParameter(params, "output.weight"),
      FindParameter(params, "output.bias"));
}

FusedAttentionWeights PackAttentionWeights(
    int64_t embed_dim, int64_t num_heads, int64_t head_dim, const Tensor& wq,
    const Tensor& bq, const Tensor& wk, const Tensor& bk, const Tensor& wv,
    const Tensor& bv, const Tensor& wo, const Tensor& bo) {
  FusedAttentionWeights packed;
  packed.embed_dim = embed_dim;
  packed.num_heads = num_heads;
  packed.head_dim = head_dim;
  const int64_t inner = packed.inner();
  HIRE_CHECK_GT(inner, 0);
  for (const Tensor* w : {&wq, &wk, &wv}) {
    HIRE_CHECK_EQ(w->dim(), 2);
    HIRE_CHECK_EQ(w->shape(0), embed_dim);
    HIRE_CHECK_EQ(w->shape(1), inner);
  }
  HIRE_CHECK_EQ(wo.shape(0), inner);
  HIRE_CHECK_EQ(wo.shape(1), embed_dim);

  packed.qkv_weight = Tensor({embed_dim, 3 * inner});
  packed.qkv_bias = Tensor({3 * inner});
  for (int64_t p = 0; p < embed_dim; ++p) {
    float* row = packed.qkv_weight.data() + p * 3 * inner;
    std::copy(wq.data() + p * inner, wq.data() + (p + 1) * inner, row);
    std::copy(wk.data() + p * inner, wk.data() + (p + 1) * inner,
              row + inner);
    std::copy(wv.data() + p * inner, wv.data() + (p + 1) * inner,
              row + 2 * inner);
  }
  std::copy(bq.data(), bq.data() + inner, packed.qkv_bias.data());
  std::copy(bk.data(), bk.data() + inner, packed.qkv_bias.data() + inner);
  std::copy(bv.data(), bv.data() + inner, packed.qkv_bias.data() + 2 * inner);
  packed.out_weight = wo;
  packed.out_bias = bo;
  return packed;
}

void FusedAttentionForward(const FusedAttentionWeights& w, const float* x,
                           int64_t batch, int64_t tokens, float* out,
                           float* scratch) {
  const int64_t e = w.embed_dim;
  const int64_t inner = w.inner();
  const int64_t rows = batch * tokens;
  float* qkv = scratch;                    // [rows, 3*inner]
  float* merged = scratch + rows * 3 * inner;  // [rows, inner]

  // Fused QKV projection: one GEMM instead of three Linear forwards.
  ops::GemmBiasActInto(x, w.qkv_weight.data(), w.qkv_bias.data(), qkv, rows,
                       e, 3 * inner);

  // Per-(batch, head) single-pass attention, strided reads from the QKV
  // buffer, head-merged writes — no split/merge permutes. Sequences are
  // independent, so sharding them over the runtime never changes results.
  {
    ScopedKernelTimer timer(KernelCategory::kInferFusedAttention);
    const float scale =
        1.0f / std::sqrt(static_cast<float>(w.head_dim));
    const int64_t sequences = batch * w.num_heads;
    const double t = static_cast<double>(tokens);
    const double d = static_cast<double>(w.head_dim);
    const int64_t grain = PlanGrain(
        sequences, {t * t * (4.0 * d + 40.0), 12.0 * t * d});
    ParallelForRange(0, sequences, grain, [&](int64_t lo, int64_t hi) {
      for (int64_t s = lo; s < hi; ++s) {
        const int64_t b = s / w.num_heads;
        const int64_t h = s - b * w.num_heads;
        const float* base = qkv + b * tokens * 3 * inner + h * w.head_dim;
        AttendSequence(w.head_dim, base, base + inner, base + 2 * inner,
                       3 * inner,
                       merged + b * tokens * inner + h * w.head_dim, inner,
                       tokens, scale);
      }
    });
  }

  // Output projection W_O.
  ops::GemmBiasActInto(merged, w.out_weight.data(), w.out_bias.data(), out,
                       rows, inner, e);
}

Tensor FusedAttentionForward(const FusedAttentionWeights& w, const Tensor& x) {
  HIRE_CHECK_EQ(x.dim(), 3);
  HIRE_CHECK_EQ(x.shape(2), w.embed_dim);
  const int64_t batch = x.shape(0);
  const int64_t tokens = x.shape(1);
  Tensor out(x.shape());
  std::vector<float> scratch(
      static_cast<size_t>(w.ScratchFloats(batch, tokens)));
  FusedAttentionForward(w, x.data(), batch, tokens, out.data(),
                        scratch.data());
  return out;
}

}  // namespace nn
}  // namespace hire
