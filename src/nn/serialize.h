#ifndef HIRE_NN_SERIALIZE_H_
#define HIRE_NN_SERIALIZE_H_

#include <cstdint>
#include <string>

#include "nn/module.h"
#include "tensor/state_dict.h"

namespace hire {
namespace nn {

/// Snapshot format version written by SaveStateDict/SaveParameters.
///
/// Version 2 ("HIRESNAP" magic) is a self-validating container:
///   magic (8 bytes) | u32 version | u64 payload_size | payload | u32 crc32
/// where the payload holds the StateDict's scalars then tensors as
/// length-prefixed name/value records. Truncation is caught by the size
/// field, bit rot by the CRC32 over the payload.
///
/// Version 1 ("HIREPARAMS1" magic) is the legacy parameter-only format;
/// LoadParameters still reads it so pre-version model files keep working.
constexpr uint32_t kSnapshotVersion = 2;

/// Serialises `state` to `path` atomically: the bytes are written to a
/// temporary file in the same directory, flushed and fsync'd, then renamed
/// over `path`. A crash at any point leaves either the old file or the new
/// file, never a torn one.
void SaveStateDict(const StateDict& state, const std::string& path);

/// Loads a version-2 snapshot. Throws hire::CheckError on a missing file,
/// wrong magic, unsupported version, truncation, or checksum mismatch.
StateDict LoadStateDict(const std::string& path);

/// Copies every named parameter of `module` into `out` under `prefix`
/// (e.g. prefix "model." yields keys "model.encoder.weight").
void ExportParameters(const Module& module, const std::string& prefix,
                      StateDict* out);

/// Restores parameters exported by ExportParameters. Every module parameter
/// must be present under `prefix` with a matching shape; mismatches throw.
void ImportParameters(Module* module, const std::string& prefix,
                      const StateDict& state);

/// Writes every named parameter of `module` to `path` as a version-2
/// snapshot (atomic, checksummed).
void SaveParameters(const Module& module, const std::string& path);

/// Restores parameters saved by SaveParameters — either the current
/// version-2 snapshot or the legacy version-1 format. Names and shapes must
/// match the module exactly; mismatches throw hire::CheckError.
void LoadParameters(Module* module, const std::string& path);

}  // namespace nn
}  // namespace hire

#endif  // HIRE_NN_SERIALIZE_H_
