#ifndef HIRE_NN_SERIALIZE_H_
#define HIRE_NN_SERIALIZE_H_

#include <string>

#include "nn/module.h"

namespace hire {
namespace nn {

/// Writes every named parameter of `module` to `path` in a simple binary
/// format (magic, count, then name/shape/data records).
void SaveParameters(const Module& module, const std::string& path);

/// Restores parameters saved by SaveParameters. Names and shapes must match
/// the module exactly; mismatches throw hire::CheckError.
void LoadParameters(Module* module, const std::string& path);

}  // namespace nn
}  // namespace hire

#endif  // HIRE_NN_SERIALIZE_H_
