#include "nn/serialize.h"

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <unordered_map>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "obs/kernel_timers.h"
#include "obs/trace.h"
#include "utils/check.h"

namespace hire {
namespace nn {

namespace {

// Legacy (version 1) parameter-only format.
constexpr char kLegacyMagic[] = "HIREPARAMS1";
constexpr size_t kLegacyMagicLen = sizeof(kLegacyMagic) - 1;

// Version-2 snapshot container.
constexpr char kSnapMagic[8] = {'H', 'I', 'R', 'E', 'S', 'N', 'A', 'P'};

// --- CRC32 (IEEE, reflected, poly 0xEDB88320) ------------------------------

uint32_t Crc32(const char* data, size_t size) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ static_cast<unsigned char>(data[i])) & 0xFFu] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// --- Payload encoding ------------------------------------------------------

void AppendBytes(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

void AppendU64(std::string* out, uint64_t value) {
  AppendBytes(out, &value, sizeof(value));
}

void AppendString(std::string* out, const std::string& text) {
  AppendU64(out, text.size());
  AppendBytes(out, text.data(), text.size());
}

/// Bounds-checked reader over an in-memory payload.
class PayloadReader {
 public:
  PayloadReader(const std::string& buffer, const std::string& path)
      : buffer_(buffer), path_(path) {}

  void Read(void* dst, size_t size) {
    // Overflow-safe: offset_ <= buffer_.size() is an invariant, so the
    // subtraction cannot wrap the way `offset_ + size` could for huge sizes.
    HIRE_CHECK(size <= buffer_.size() - offset_)
        << "truncated snapshot payload in '" << path_ << "'";
    std::memcpy(dst, buffer_.data() + offset_, size);
    offset_ += size;
  }

  uint64_t ReadU64() {
    uint64_t value = 0;
    Read(&value, sizeof(value));
    return value;
  }

  std::string ReadString() {
    const uint64_t size = ReadU64();
    HIRE_CHECK(size <= buffer_.size() - offset_)
        << "truncated snapshot payload in '" << path_ << "'";
    std::string text(buffer_.data() + offset_, size);
    offset_ += size;
    return text;
  }

  bool AtEnd() const { return offset_ == buffer_.size(); }

 private:
  const std::string& buffer_;
  const std::string& path_;
  size_t offset_ = 0;
};

std::string EncodePayload(const StateDict& state) {
  std::string payload;
  AppendU64(&payload, state.scalars.size());
  for (const auto& [name, value] : state.scalars) {
    AppendString(&payload, name);
    AppendU64(&payload, value);
  }
  AppendU64(&payload, state.tensors.size());
  for (const auto& [name, tensor] : state.tensors) {
    AppendString(&payload, name);
    AppendU64(&payload, static_cast<uint64_t>(tensor.dim()));
    for (int64_t extent : tensor.shape()) {
      AppendU64(&payload, static_cast<uint64_t>(extent));
    }
    AppendBytes(&payload, tensor.data(),
                static_cast<size_t>(tensor.size()) * sizeof(float));
  }
  return payload;
}

StateDict DecodePayload(const std::string& payload, const std::string& path) {
  StateDict state;
  PayloadReader reader(payload, path);
  const uint64_t num_scalars = reader.ReadU64();
  for (uint64_t s = 0; s < num_scalars; ++s) {
    std::string name = reader.ReadString();
    state.PutScalar(name, reader.ReadU64());
  }
  const uint64_t num_tensors = reader.ReadU64();
  for (uint64_t t = 0; t < num_tensors; ++t) {
    std::string name = reader.ReadString();
    const uint64_t rank = reader.ReadU64();
    HIRE_CHECK_LE(rank, 16u) << "implausible tensor rank in '" << path << "'";
    std::vector<int64_t> shape(rank);
    for (uint64_t i = 0; i < rank; ++i) {
      shape[i] = static_cast<int64_t>(reader.ReadU64());
      HIRE_CHECK_GE(shape[i], 0) << "negative extent in '" << path << "'";
    }
    Tensor value(shape);
    reader.Read(value.data(), static_cast<size_t>(value.size()) * sizeof(float));
    state.PutTensor(std::move(name), std::move(value));
  }
  HIRE_CHECK(reader.AtEnd())
      << "trailing bytes after snapshot payload in '" << path << "'";
  return state;
}

/// Flushes a written file's bytes to stable storage (best effort on
/// platforms without fsync).
void SyncPath(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

void SyncParentDirectory(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

void LoadLegacyParameters(Module* module, std::ifstream& in,
                          const std::string& path) {
  auto read_u64 = [&in, &path]() {
    uint64_t value = 0;
    in.read(reinterpret_cast<char*>(&value), sizeof(value));
    HIRE_CHECK(in.good()) << "truncated parameter file '" << path << "'";
    return value;
  };

  const uint64_t count = read_u64();
  std::unordered_map<std::string, Tensor> loaded;
  for (uint64_t p = 0; p < count; ++p) {
    const uint64_t name_len = read_u64();
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    const uint64_t rank = read_u64();
    std::vector<int64_t> shape(rank);
    for (uint64_t i = 0; i < rank; ++i) {
      shape[i] = static_cast<int64_t>(read_u64());
    }
    Tensor value(shape);
    in.read(reinterpret_cast<char*>(value.data()),
            static_cast<std::streamsize>(value.size() * sizeof(float)));
    HIRE_CHECK(in.good()) << "truncated parameter file '" << path << "'";
    loaded.emplace(std::move(name), std::move(value));
  }

  auto named = module->NamedParameters();
  HIRE_CHECK_EQ(named.size(), loaded.size())
      << "parameter count mismatch loading '" << path << "'";
  for (auto& [name, variable] : named) {
    auto it = loaded.find(name);
    HIRE_CHECK(it != loaded.end()) << "missing parameter '" << name << "'";
    HIRE_CHECK(it->second.SameShape(variable.value()))
        << "shape mismatch for '" << name << "': file "
        << it->second.ShapeString() << " vs model "
        << variable.value().ShapeString();
    variable.mutable_value() = it->second;
  }
}

}  // namespace

void SaveStateDict(const StateDict& state, const std::string& path) {
  ScopedKernelTimer timer(KernelCategory::kCheckpointIo);
  HIRE_TRACE_SCOPE("checkpoint_serialize");
  const std::string payload = EncodePayload(state);
  const uint32_t crc = Crc32(payload.data(), payload.size());

  const std::string temp_path = path + ".tmp";
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    HIRE_CHECK(out.is_open())
        << "cannot open '" << temp_path << "' for writing";
    out.write(kSnapMagic, sizeof(kSnapMagic));
    const uint32_t version = kSnapshotVersion;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    const uint64_t payload_size = payload.size();
    out.write(reinterpret_cast<const char*>(&payload_size),
              sizeof(payload_size));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    out.flush();
    HIRE_CHECK(out.good()) << "write to '" << temp_path << "' failed";
  }
  SyncPath(temp_path);
  HIRE_CHECK(std::rename(temp_path.c_str(), path.c_str()) == 0)
      << "cannot rename '" << temp_path << "' to '" << path << "'";
  SyncParentDirectory(path);
}

StateDict LoadStateDict(const std::string& path) {
  ScopedKernelTimer timer(KernelCategory::kCheckpointIo);
  HIRE_TRACE_SCOPE("checkpoint_deserialize");
  std::ifstream in(path, std::ios::binary);
  HIRE_CHECK(in.is_open()) << "cannot open '" << path << "' for reading";

  char magic[sizeof(kSnapMagic)];
  in.read(magic, sizeof(magic));
  HIRE_CHECK(in.good() && std::memcmp(magic, kSnapMagic, sizeof(magic)) == 0)
      << "'" << path << "' is not a HIRE snapshot";

  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  HIRE_CHECK(in.good() && version == kSnapshotVersion)
      << "unsupported snapshot version " << version << " in '" << path << "'";

  uint64_t payload_size = 0;
  in.read(reinterpret_cast<char*>(&payload_size), sizeof(payload_size));
  HIRE_CHECK(in.good()) << "truncated snapshot header in '" << path << "'";

  // The header is not covered by the CRC, so validate the size field against
  // the on-disk size before allocating: a corrupted size must surface as
  // CheckError (which recovery paths skip past), not length_error/bad_alloc.
  constexpr uint64_t kEnvelopeBytes = sizeof(kSnapMagic) + sizeof(uint32_t) +
                                      sizeof(uint64_t) + sizeof(uint32_t);
  std::error_code size_error;
  const uint64_t file_size = std::filesystem::file_size(path, size_error);
  HIRE_CHECK(!size_error)
      << "cannot stat '" << path << "': " << size_error.message();
  HIRE_CHECK(file_size >= kEnvelopeBytes &&
             payload_size == file_size - kEnvelopeBytes)
      << "snapshot '" << path << "' header claims a " << payload_size
      << "-byte payload but the file holds " << file_size
      << " bytes — header is corrupt or the file is truncated";

  std::string payload(payload_size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_size));
  HIRE_CHECK(in.good() &&
             in.gcount() == static_cast<std::streamsize>(payload_size))
      << "truncated snapshot '" << path << "' (payload cut short)";

  uint32_t stored_crc = 0;
  in.read(reinterpret_cast<char*>(&stored_crc), sizeof(stored_crc));
  HIRE_CHECK(in.good()) << "truncated snapshot '" << path
                        << "' (missing checksum)";

  const uint32_t actual_crc = Crc32(payload.data(), payload.size());
  HIRE_CHECK(actual_crc == stored_crc)
      << "checksum mismatch in '" << path << "': stored " << stored_crc
      << " vs computed " << actual_crc << " — snapshot is corrupt";

  return DecodePayload(payload, path);
}

void ExportParameters(const Module& module, const std::string& prefix,
                      StateDict* out) {
  HIRE_CHECK(out != nullptr);
  for (const auto& [name, variable] : module.NamedParameters()) {
    out->PutTensor(prefix + name, variable.value());
  }
}

void ImportParameters(Module* module, const std::string& prefix,
                      const StateDict& state) {
  HIRE_CHECK(module != nullptr);
  auto named = module->NamedParameters();
  for (auto& [name, variable] : named) {
    const std::string key = prefix + name;
    HIRE_CHECK(state.HasTensor(key))
        << "snapshot is missing parameter '" << key << "'";
    const Tensor& value = state.GetTensor(key);
    HIRE_CHECK(value.SameShape(variable.value()))
        << "shape mismatch for '" << key << "': snapshot "
        << value.ShapeString() << " vs model "
        << variable.value().ShapeString();
    variable.mutable_value() = value;
  }
}

void SaveParameters(const Module& module, const std::string& path) {
  StateDict state;
  ExportParameters(module, "", &state);
  SaveStateDict(state, path);
}

void LoadParameters(Module* module, const std::string& path) {
  HIRE_CHECK(module != nullptr);

  // Sniff the magic to pick the format: legacy v1 files start with
  // "HIREPARAMS1", current snapshots with "HIRESNAP".
  std::ifstream in(path, std::ios::binary);
  HIRE_CHECK(in.is_open()) << "cannot open '" << path << "' for reading";
  char magic[kLegacyMagicLen] = {};
  in.read(magic, static_cast<std::streamsize>(kLegacyMagicLen));
  const size_t sniffed = static_cast<size_t>(in.gcount());
  if (sniffed == kLegacyMagicLen &&
      std::memcmp(magic, kLegacyMagic, kLegacyMagicLen) == 0) {
    LoadLegacyParameters(module, in, path);
    return;
  }
  in.close();

  HIRE_CHECK(sniffed >= sizeof(kSnapMagic) &&
             std::memcmp(magic, kSnapMagic, sizeof(kSnapMagic)) == 0)
      << "'" << path << "' is not a HIRE parameter file";
  const StateDict state = LoadStateDict(path);
  HIRE_CHECK_EQ(module->NamedParameters().size(), state.tensors.size())
      << "parameter count mismatch loading '" << path << "'";
  ImportParameters(module, "", state);
}

}  // namespace nn
}  // namespace hire
