#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <unordered_map>

#include "utils/check.h"

namespace hire {
namespace nn {

namespace {

constexpr char kMagic[] = "HIREPARAMS1";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;

void WriteU64(std::ofstream& out, uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

uint64_t ReadU64(std::ifstream& in) {
  uint64_t value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  HIRE_CHECK(in.good()) << "truncated parameter file";
  return value;
}

}  // namespace

void SaveParameters(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  HIRE_CHECK(out.is_open()) << "cannot open '" << path << "' for writing";

  const auto named = module.NamedParameters();
  out.write(kMagic, static_cast<std::streamsize>(kMagicLen));
  WriteU64(out, named.size());
  for (const auto& [name, variable] : named) {
    WriteU64(out, name.size());
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    const Tensor& value = variable.value();
    WriteU64(out, static_cast<uint64_t>(value.dim()));
    for (int64_t extent : value.shape()) {
      WriteU64(out, static_cast<uint64_t>(extent));
    }
    out.write(reinterpret_cast<const char*>(value.data()),
              static_cast<std::streamsize>(value.size() * sizeof(float)));
  }
  HIRE_CHECK(out.good()) << "write to '" << path << "' failed";
}

void LoadParameters(Module* module, const std::string& path) {
  HIRE_CHECK(module != nullptr);
  std::ifstream in(path, std::ios::binary);
  HIRE_CHECK(in.is_open()) << "cannot open '" << path << "' for reading";

  char magic[kMagicLen];
  in.read(magic, static_cast<std::streamsize>(kMagicLen));
  HIRE_CHECK(in.good() && std::string(magic, kMagicLen) == kMagic)
      << "'" << path << "' is not a HIRE parameter file";

  const uint64_t count = ReadU64(in);
  std::unordered_map<std::string, Tensor> loaded;
  for (uint64_t p = 0; p < count; ++p) {
    const uint64_t name_len = ReadU64(in);
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    const uint64_t rank = ReadU64(in);
    std::vector<int64_t> shape(rank);
    for (uint64_t i = 0; i < rank; ++i) {
      shape[i] = static_cast<int64_t>(ReadU64(in));
    }
    Tensor value(shape);
    in.read(reinterpret_cast<char*>(value.data()),
            static_cast<std::streamsize>(value.size() * sizeof(float)));
    HIRE_CHECK(in.good()) << "truncated parameter file '" << path << "'";
    loaded.emplace(std::move(name), std::move(value));
  }

  auto named = module->NamedParameters();
  HIRE_CHECK_EQ(named.size(), loaded.size())
      << "parameter count mismatch loading '" << path << "'";
  for (auto& [name, variable] : named) {
    auto it = loaded.find(name);
    HIRE_CHECK(it != loaded.end()) << "missing parameter '" << name << "'";
    HIRE_CHECK(it->second.SameShape(variable.value()))
        << "shape mismatch for '" << name << "': file "
        << it->second.ShapeString() << " vs model "
        << variable.value().ShapeString();
    variable.mutable_value() = it->second;
  }
}

}  // namespace nn
}  // namespace hire
