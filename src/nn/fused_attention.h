#ifndef HIRE_NN_FUSED_ATTENTION_H_
#define HIRE_NN_FUSED_ATTENTION_H_

#include <cstdint>

#include "nn/multi_head_self_attention.h"
#include "tensor/tensor.h"

namespace hire {
namespace nn {

/// One MHSA layer's weights packed for the tape-free fused forward
/// (core/inference_forward.h). The three input projections are concatenated
/// column-wise into a single [e, 3*inner] matrix, so Q, K and V come out of
/// one GEMM over the input — bitwise identical to three separate Linear
/// forwards, because every GEMM output column accumulates independently in
/// ascending-p order. Packing happens once (at snapshot load / predictor
/// construction), never per forward.
struct FusedAttentionWeights {
  int64_t embed_dim = 0;
  int64_t num_heads = 0;
  int64_t head_dim = 0;
  Tensor qkv_weight;  // [embed_dim, 3*inner]: Q columns, then K, then V
  Tensor qkv_bias;    // [3*inner]
  Tensor out_weight;  // [inner, embed_dim]
  Tensor out_bias;    // [embed_dim]

  int64_t inner() const { return num_heads * head_dim; }

  /// Scratch floats one Forward over [batch, tokens, embed_dim] needs: the
  /// QKV projection buffer plus the head-merged attention output.
  int64_t ScratchFloats(int64_t batch, int64_t tokens) const {
    return batch * tokens * 4 * inner();
  }
};

/// Packs a trained MultiHeadSelfAttention (via its named parameters) into
/// the fused layout.
FusedAttentionWeights PackAttentionWeights(const MultiHeadSelfAttention& mhsa);

/// Packs raw projection weights (Linear layout [in, out]) and biases.
FusedAttentionWeights PackAttentionWeights(
    int64_t embed_dim, int64_t num_heads, int64_t head_dim,
    const Tensor& wq, const Tensor& bq, const Tensor& wk, const Tensor& bk,
    const Tensor& wv, const Tensor& bv, const Tensor& wo, const Tensor& bo);

/// Fused MHSA forward: x [batch, tokens, e] -> out [batch, tokens, e], over
/// caller-provided scratch of at least w.ScratchFloats(batch, tokens)
/// floats (normally arena-backed; nothing is heap-allocated here). One QKV
/// GEMM, then per-(batch, head) single-pass online-softmax attention read
/// strided out of the QKV buffer and written head-merged (the tape path's
/// split/merge permutes disappear), then the output projection. The
/// attention inner loops are compile-time specialised for the common head
/// dims (2, 4, 8, 16) and fall back to the generic strided kernel
/// (ops::OnlineSoftmaxWeightedSumInto) otherwise; both orderings are
/// identical, so the fallback changes nothing but speed.
///
/// Agrees with MultiHeadSelfAttention::Forward within ~1e-6 per element:
/// the projections are bitwise identical, the online softmax re-associates
/// only the softmax normalisation (tests/nn_test.cc pins the bound).
void FusedAttentionForward(const FusedAttentionWeights& w, const float* x,
                           int64_t batch, int64_t tokens, float* out,
                           float* scratch);

/// Allocating convenience wrapper for tests and benchmarks.
Tensor FusedAttentionForward(const FusedAttentionWeights& w, const Tensor& x);

}  // namespace nn
}  // namespace hire

#endif  // HIRE_NN_FUSED_ATTENTION_H_
