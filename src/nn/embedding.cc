#include "nn/embedding.h"

#include "autograd/ops.h"
#include "nn/init.h"
#include "utils/check.h"

namespace hire {
namespace nn {

Embedding::Embedding(int64_t num_categories, int64_t dim, Rng* rng)
    : num_categories_(num_categories), dim_(dim) {
  HIRE_CHECK(rng != nullptr);
  table_ = RegisterParameter("table",
                             EmbeddingInit(num_categories, dim, rng));
}

ag::Variable Embedding::Forward(const std::vector<int64_t>& indices) const {
  return ag::EmbeddingLookup(table_, indices);
}

}  // namespace nn
}  // namespace hire
