#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "utils/check.h"

namespace hire {
namespace ops {

namespace {

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  HIRE_CHECK(a.SameShape(b)) << op << ": shape mismatch " << a.ShapeString()
                             << " vs " << b.ShapeString();
}

template <typename BinaryFn>
Tensor ElementwiseBinary(const Tensor& a, const Tensor& b, const char* name,
                         BinaryFn fn) {
  CheckSameShape(a, b, name);
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) po[i] = fn(pa[i], pb[i]);
  return out;
}

template <typename UnaryFn>
Tensor ElementwiseUnary(const Tensor& a, UnaryFn fn) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) po[i] = fn(pa[i]);
  return out;
}

// Core GEMM kernel: C[n, m] (+)= A[n, k] * B[k, m], row-major, ikj order so
// the inner loop streams both B's row and C's row.
void GemmAccumulate(const float* a, const float* b, float* c, int64_t n,
                    int64_t k, int64_t m) {
  for (int64_t i = 0; i < n; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * m;
    for (int64_t p = 0; p < k; ++p) {
      const float a_ip = a_row[p];
      if (a_ip == 0.0f) continue;
      const float* b_row = b + p * m;
      for (int64_t j = 0; j < m; ++j) {
        c_row[j] += a_ip * b_row[j];
      }
    }
  }
}

// C[n, m] (+)= A[n, k] * B[m, k]^T: rows of B are contiguous, dot-product
// formulation.
void GemmTransposedBAccumulate(const float* a, const float* b, float* c,
                               int64_t n, int64_t k, int64_t m) {
  for (int64_t i = 0; i < n; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * m;
    for (int64_t j = 0; j < m; ++j) {
      const float* b_row = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      c_row[j] += acc;
    }
  }
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, "Add", std::plus<float>());
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, "Sub", std::minus<float>());
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, "Mul", std::multiplies<float>());
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, "Div", std::divides<float>());
}

Tensor AddScalar(const Tensor& a, float value) {
  return ElementwiseUnary(a, [value](float x) { return x + value; });
}

Tensor MulScalar(const Tensor& a, float value) {
  return ElementwiseUnary(a, [value](float x) { return x * value; });
}

Tensor Neg(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return -x; });
}

Tensor Exp(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return std::exp(x); });
}

Tensor Log(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return std::log(x); });
}

Tensor Sqrt(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return std::sqrt(x); });
}

Tensor Abs(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return std::fabs(x); });
}

Tensor Square(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return x * x; });
}

Tensor Sigmoid(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) {
    return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                     : std::exp(x) / (1.0f + std::exp(x));
  });
}

Tensor Relu(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor Tanh(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return std::tanh(x); });
}

Tensor Clamp(const Tensor& a, float lo, float hi) {
  HIRE_CHECK_LE(lo, hi);
  return ElementwiseUnary(a, [lo, hi](float x) { return std::clamp(x, lo, hi); });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  HIRE_CHECK_EQ(a.dim(), 2);
  HIRE_CHECK_EQ(b.dim(), 2);
  HIRE_CHECK_EQ(a.shape(1), b.shape(0))
      << "MatMul " << a.ShapeString() << " x " << b.ShapeString();
  Tensor out({a.shape(0), b.shape(1)});
  GemmAccumulate(a.data(), b.data(), out.data(), a.shape(0), a.shape(1),
                 b.shape(1));
  return out;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  HIRE_CHECK_EQ(a.dim(), 2);
  HIRE_CHECK_EQ(b.dim(), 2);
  HIRE_CHECK_EQ(a.shape(1), b.shape(1))
      << "MatMulTransposedB " << a.ShapeString() << " x " << b.ShapeString();
  Tensor out({a.shape(0), b.shape(0)});
  GemmTransposedBAccumulate(a.data(), b.data(), out.data(), a.shape(0),
                            a.shape(1), b.shape(0));
  return out;
}

Tensor BatchedMatMul(const Tensor& a, const Tensor& b) {
  HIRE_CHECK_EQ(a.dim(), 3);
  HIRE_CHECK_EQ(b.dim(), 3);
  HIRE_CHECK_EQ(a.shape(0), b.shape(0));
  HIRE_CHECK_EQ(a.shape(2), b.shape(1))
      << "BatchedMatMul " << a.ShapeString() << " x " << b.ShapeString();
  const int64_t batch = a.shape(0);
  const int64_t n = a.shape(1);
  const int64_t k = a.shape(2);
  const int64_t m = b.shape(2);
  Tensor out({batch, n, m});
  for (int64_t s = 0; s < batch; ++s) {
    GemmAccumulate(a.data() + s * n * k, b.data() + s * k * m,
                   out.data() + s * n * m, n, k, m);
  }
  return out;
}

Tensor BatchedMatMulTransposedB(const Tensor& a, const Tensor& b) {
  HIRE_CHECK_EQ(a.dim(), 3);
  HIRE_CHECK_EQ(b.dim(), 3);
  HIRE_CHECK_EQ(a.shape(0), b.shape(0));
  HIRE_CHECK_EQ(a.shape(2), b.shape(2))
      << "BatchedMatMulTransposedB " << a.ShapeString() << " x "
      << b.ShapeString();
  const int64_t batch = a.shape(0);
  const int64_t n = a.shape(1);
  const int64_t k = a.shape(2);
  const int64_t m = b.shape(1);
  Tensor out({batch, n, m});
  for (int64_t s = 0; s < batch; ++s) {
    GemmTransposedBAccumulate(a.data() + s * n * k, b.data() + s * m * k,
                              out.data() + s * n * m, n, k, m);
  }
  return out;
}

Tensor AddBias(const Tensor& x, const Tensor& bias) {
  HIRE_CHECK_EQ(bias.dim(), 1);
  HIRE_CHECK_GE(x.dim(), 1);
  const int64_t d = bias.shape(0);
  HIRE_CHECK_EQ(x.shape(-1), d)
      << "AddBias " << x.ShapeString() << " + " << bias.ShapeString();
  Tensor out = x;
  float* po = out.data();
  const float* pb = bias.data();
  const int64_t rows = x.size() / d;
  for (int64_t r = 0; r < rows; ++r) {
    float* row = po + r * d;
    for (int64_t j = 0; j < d; ++j) row[j] += pb[j];
  }
  return out;
}

Tensor Permute(const Tensor& a, const std::vector<int>& axes) {
  const int rank = a.dim();
  HIRE_CHECK_EQ(static_cast<int>(axes.size()), rank);
  std::vector<bool> seen(static_cast<size_t>(rank), false);
  std::vector<int64_t> new_shape(static_cast<size_t>(rank));
  for (int i = 0; i < rank; ++i) {
    const int axis = axes[static_cast<size_t>(i)];
    HIRE_CHECK(axis >= 0 && axis < rank && !seen[static_cast<size_t>(axis)])
        << "bad permutation axis " << axis;
    seen[static_cast<size_t>(axis)] = true;
    new_shape[static_cast<size_t>(i)] = a.shape(axis);
  }

  Tensor out(new_shape);
  const std::vector<int64_t> in_strides = a.Strides();
  const std::vector<int64_t> out_strides = out.Strides();
  const int64_t total = a.size();
  // For each output element, reconstruct the multi-index and gather from
  // the input.
  for (int64_t flat = 0; flat < total; ++flat) {
    int64_t rem = flat;
    int64_t src = 0;
    for (int i = 0; i < rank; ++i) {
      const int64_t coord = rem / out_strides[static_cast<size_t>(i)];
      rem %= out_strides[static_cast<size_t>(i)];
      src += coord * in_strides[static_cast<size_t>(axes[static_cast<size_t>(i)])];
    }
    out.flat(flat) = a.flat(src);
  }
  return out;
}

Tensor TransposeLast2(const Tensor& a) {
  const int rank = a.dim();
  HIRE_CHECK_GE(rank, 2);
  std::vector<int> axes(static_cast<size_t>(rank));
  for (int i = 0; i < rank; ++i) axes[static_cast<size_t>(i)] = i;
  std::swap(axes[static_cast<size_t>(rank - 1)],
            axes[static_cast<size_t>(rank - 2)]);
  return Permute(a, axes);
}

Tensor Concat(const std::vector<Tensor>& parts, int axis) {
  HIRE_CHECK(!parts.empty());
  const int rank = parts[0].dim();
  if (axis < 0) axis += rank;
  HIRE_CHECK(axis >= 0 && axis < rank) << "concat axis " << axis;

  std::vector<int64_t> out_shape = parts[0].shape();
  int64_t concat_extent = 0;
  for (const Tensor& part : parts) {
    HIRE_CHECK_EQ(part.dim(), rank);
    for (int i = 0; i < rank; ++i) {
      if (i == axis) continue;
      HIRE_CHECK_EQ(part.shape(i), out_shape[static_cast<size_t>(i)])
          << "concat shape mismatch on axis " << i;
    }
    concat_extent += part.shape(axis);
  }
  out_shape[static_cast<size_t>(axis)] = concat_extent;

  Tensor out(out_shape);
  // Views as [outer, axis_extent, inner] blocks.
  int64_t outer = 1;
  for (int i = 0; i < axis; ++i) outer *= out_shape[static_cast<size_t>(i)];
  int64_t inner = 1;
  for (int i = axis + 1; i < rank; ++i) {
    inner *= out_shape[static_cast<size_t>(i)];
  }

  int64_t offset = 0;
  for (const Tensor& part : parts) {
    const int64_t extent = part.shape(axis);
    for (int64_t o = 0; o < outer; ++o) {
      const float* src = part.data() + o * extent * inner;
      float* dst = out.data() + (o * concat_extent + offset) * inner;
      std::copy(src, src + extent * inner, dst);
    }
    offset += extent;
  }
  return out;
}

Tensor Slice(const Tensor& a, int axis, int64_t start, int64_t length) {
  const int rank = a.dim();
  if (axis < 0) axis += rank;
  HIRE_CHECK(axis >= 0 && axis < rank) << "slice axis " << axis;
  HIRE_CHECK(start >= 0 && length > 0 && start + length <= a.shape(axis))
      << "slice [" << start << ", " << start + length << ") of axis " << axis
      << " in " << a.ShapeString();

  std::vector<int64_t> out_shape = a.shape();
  out_shape[static_cast<size_t>(axis)] = length;
  Tensor out(out_shape);

  int64_t outer = 1;
  for (int i = 0; i < axis; ++i) outer *= a.shape(i);
  int64_t inner = 1;
  for (int i = axis + 1; i < rank; ++i) inner *= a.shape(i);
  const int64_t in_extent = a.shape(axis);

  for (int64_t o = 0; o < outer; ++o) {
    const float* src = a.data() + (o * in_extent + start) * inner;
    float* dst = out.data() + o * length * inner;
    std::copy(src, src + length * inner, dst);
  }
  return out;
}

float SumAll(const Tensor& a) {
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) acc += a.flat(i);
  return static_cast<float>(acc);
}

float MeanAll(const Tensor& a) {
  HIRE_CHECK_GT(a.size(), 0);
  return SumAll(a) / static_cast<float>(a.size());
}

float MaxAll(const Tensor& a) {
  HIRE_CHECK_GT(a.size(), 0);
  float best = a.flat(0);
  for (int64_t i = 1; i < a.size(); ++i) best = std::max(best, a.flat(i));
  return best;
}

float MinAll(const Tensor& a) {
  HIRE_CHECK_GT(a.size(), 0);
  float best = a.flat(0);
  for (int64_t i = 1; i < a.size(); ++i) best = std::min(best, a.flat(i));
  return best;
}

float Norm(const Tensor& a) {
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    const double x = a.flat(i);
    acc += x * x;
  }
  return static_cast<float>(std::sqrt(acc));
}

Tensor Sum(const Tensor& a, int axis) {
  const int rank = a.dim();
  if (axis < 0) axis += rank;
  HIRE_CHECK(axis >= 0 && axis < rank) << "sum axis " << axis;

  std::vector<int64_t> out_shape;
  for (int i = 0; i < rank; ++i) {
    if (i != axis) out_shape.push_back(a.shape(i));
  }
  if (out_shape.empty()) out_shape.push_back(1);
  Tensor out(out_shape);

  int64_t outer = 1;
  for (int i = 0; i < axis; ++i) outer *= a.shape(i);
  int64_t inner = 1;
  for (int i = axis + 1; i < rank; ++i) inner *= a.shape(i);
  const int64_t extent = a.shape(axis);

  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t e = 0; e < extent; ++e) {
      const float* src = a.data() + (o * extent + e) * inner;
      float* dst = out.data() + o * inner;
      for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
    }
  }
  return out;
}

Tensor Mean(const Tensor& a, int axis) {
  const int rank = a.dim();
  const int resolved = axis < 0 ? axis + rank : axis;
  Tensor sum = Sum(a, axis);
  return MulScalar(sum, 1.0f / static_cast<float>(a.shape(resolved)));
}

Tensor Softmax(const Tensor& a) {
  HIRE_CHECK_GE(a.dim(), 1);
  const int64_t d = a.shape(-1);
  const int64_t rows = a.size() / d;
  Tensor out(a.shape());
  for (int64_t r = 0; r < rows; ++r) {
    const float* src = a.data() + r * d;
    float* dst = out.data() + r * d;
    float row_max = src[0];
    for (int64_t j = 1; j < d; ++j) row_max = std::max(row_max, src[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      dst[j] = std::exp(src[j] - row_max);
      denom += dst[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t j = 0; j < d; ++j) dst[j] *= inv;
  }
  return out;
}

bool AllClose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (!a.SameShape(b)) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    const float diff = std::fabs(a.flat(i) - b.flat(i));
    if (diff > atol + rtol * std::fabs(b.flat(i))) return false;
  }
  return true;
}

}  // namespace ops
}  // namespace hire
