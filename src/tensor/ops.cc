#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>

#include "utils/check.h"
#include "utils/cost_model.h"
#include "utils/parallel.h"
#include "utils/stopwatch.h"

namespace hire {
namespace ops {

namespace {

// ---------------------------------------------------------------------------
// Parallel dispatch. Every loop's grain comes from the cost model
// (utils/cost_model.h): the kernel describes one loop index as flops +
// bytes, and the planner either picks a chunk size or keeps the loop serial
// when the estimated work is below the measured fan-out payoff threshold.
// Chunk boundaries never affect results — every output element is produced
// entirely by one worker, in the same operation order as the serial kernel
// — so outputs are bitwise identical for any thread count.
// ---------------------------------------------------------------------------

// Below this total MAC count a GEMM skips blocking/packing entirely.
constexpr int64_t kSmallGemmMacs = int64_t{1} << 15;
// An exp/log/tanh costs tens of flops; what the cost model charges for one.
constexpr double kTranscendentalFlops = 40.0;

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  HIRE_CHECK(a.SameShape(b)) << op << ": shape mismatch " << a.ShapeString()
                             << " vs " << b.ShapeString();
}

template <typename BinaryFn>
Tensor ElementwiseBinary(const Tensor& a, const Tensor& b, const char* name,
                         BinaryFn fn) {
  CheckSameShape(a, b, name);
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t grain = PlanGrain(a.size(), {1.0, 12.0});
  ParallelForRange(0, a.size(), grain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = fn(pa[i], pb[i]);
  });
  return out;
}

template <typename UnaryFn>
Tensor ElementwiseUnary(const Tensor& a, UnaryFn fn,
                        double flops_per_element = 1.0) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const int64_t grain = PlanGrain(a.size(), {flops_per_element, 8.0});
  ParallelForRange(0, a.size(), grain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = fn(pa[i]);
  });
  return out;
}

// ---------------------------------------------------------------------------
// GEMM backend: C[n, m] += A[n, k] * B(k, m), with B either row-major
// [k, m] or stored transposed as [m, k].
//
// Two paths share identical per-element arithmetic — for each C[i, j] the
// products A[i, p] * B[p, j] are accumulated in ascending p with a single
// rounding chain (no FMA contraction under -std=c++20, no reassociation) —
// so the dispatch never changes results:
//   * SmallGemm: the seed's loop nests, minus its `a_ip == 0` skip. The
//     skip was a mispredicting branch in the hottest loop and silently
//     broke IEEE semantics (0 * inf must be NaN, not "no-op").
//   * BlockedGemm: cache-blocked (MC x KC x NC) with packed panels and a
//     register-tiled MR x NR micro-kernel whose inner loop the compiler
//     auto-vectorizes.
// Parallel dispatch shards rows of A; each row is produced wholly by one
// worker, keeping threaded output bitwise equal to serial.
// ---------------------------------------------------------------------------

constexpr int64_t kMr = 4;     // micro-tile rows (accumulator rows)
constexpr int64_t kMaxNr = 16; // widest micro-tile; packing pads to this
constexpr int64_t kMc = 64;    // A rows per cache block
constexpr int64_t kKc = 256;   // depth per cache block (A panel ~64 KiB)
constexpr int64_t kNc = 256;   // B cols per cache block (B panel ~256 KiB)

static_assert(kMc % kMr == 0 && kNc % kMaxNr == 0, "block/tile mismatch");

// Micro-tile width, chosen once at runtime: 16 floats (two YMM vectors,
// eight YMM accumulator registers) when the host has AVX2, else 8 (two XMM
// vectors) so the 4 x NR accumulator block still fits the 16 SSE registers.
int64_t NrTile() {
  static const int64_t nr = __builtin_cpu_supports("avx2") ? 16 : 8;
  return nr;
}

// Packs the kc x nc block of B starting at (pc, jc) into nr_tile-wide column
// panels: bpack[j0 * kc + p * nr_tile + j] = B[pc + p, jc + j0 + j]. Ragged
// right edges are zero-padded so the micro-kernel always runs full width.
void PackB(const float* b, int64_t ldb, bool b_transposed, int64_t pc,
           int64_t jc, int64_t kc, int64_t nc, int64_t nr_tile,
           float* bpack) {
  for (int64_t j0 = 0; j0 < nc; j0 += nr_tile) {
    const int64_t nr = std::min(nr_tile, nc - j0);
    float* dst = bpack + j0 * kc;
    if (!b_transposed) {
      for (int64_t p = 0; p < kc; ++p) {
        const float* src = b + (pc + p) * ldb + jc + j0;
        for (int64_t j = 0; j < nr; ++j) dst[p * nr_tile + j] = src[j];
        for (int64_t j = nr; j < nr_tile; ++j) dst[p * nr_tile + j] = 0.0f;
      }
    } else {
      // B stored as [m, k]: column j of the logical B is row (jc + j0 + j).
      for (int64_t p = 0; p < kc; ++p) {
        for (int64_t j = 0; j < nr; ++j) {
          dst[p * nr_tile + j] = b[(jc + j0 + j) * ldb + pc + p];
        }
        for (int64_t j = nr; j < nr_tile; ++j) dst[p * nr_tile + j] = 0.0f;
      }
    }
  }
}

// Packs the mc x kc block of A starting at (ic, pc) into kMr-tall row
// panels: apack[i0 * kc + p * kMr + r] = A[ic + i0 + r, pc + p]. Ragged
// bottom edges are zero-padded (the padded rows' results are discarded).
void PackA(const float* a, int64_t lda, int64_t ic, int64_t pc, int64_t mc,
           int64_t kc, float* apack) {
  for (int64_t i0 = 0; i0 < mc; i0 += kMr) {
    const int64_t mr = std::min(kMr, mc - i0);
    float* dst = apack + i0 * kc;
    for (int64_t r = 0; r < mr; ++r) {
      const float* src = a + (ic + i0 + r) * lda + pc;
      for (int64_t p = 0; p < kc; ++p) dst[p * kMr + r] = src[p];
    }
    for (int64_t r = mr; r < kMr; ++r) {
      for (int64_t p = 0; p < kc; ++p) dst[p * kMr + r] = 0.0f;
    }
  }
}

// Register-tiled micro-kernels: C[kMr, NR] += Apanel[kc, kMr] *
// Bpanel[kc, NR] for one packed panel pair. Written with GCC vector
// extensions so the kMr x NR accumulator block provably lives in vector
// registers (the auto-vectorizer picks a shuffle-heavy row-interleaved
// strategy for the equivalent scalar loops). Each lane does a separate
// multiply then add -- no FMA target, so no contraction -- which rounds
// exactly like the seed scalar loop; per C element the products still
// accumulate in ascending-p order.
typedef float v4sf __attribute__((vector_size(16)));
typedef float v8sf __attribute__((vector_size(32)));
// Unaligned-load aliases (C rows and packed panels have no 16/32B promise).
typedef float v4sf_u __attribute__((vector_size(16), aligned(4)));
typedef float v8sf_u __attribute__((vector_size(32), aligned(4)));

// 4 x 16 tile = eight 8-wide accumulators; the AVX2 clone keeps them in YMM
// registers. The baseline clone splits each op into two SSE halves (slower,
// only used on hosts without AVX2, still bit-identical).
__attribute__((target_clones("avx2", "default"))) void MicroKernel16(
    const float* apanel, const float* bpanel, float* c, int64_t ldc,
    int64_t kc) {
  float* c0 = c;
  float* c1 = c + ldc;
  float* c2 = c + 2 * ldc;
  float* c3 = c + 3 * ldc;
  v8sf acc00 = *(const v8sf_u*)(c0), acc01 = *(const v8sf_u*)(c0 + 8);
  v8sf acc10 = *(const v8sf_u*)(c1), acc11 = *(const v8sf_u*)(c1 + 8);
  v8sf acc20 = *(const v8sf_u*)(c2), acc21 = *(const v8sf_u*)(c2 + 8);
  v8sf acc30 = *(const v8sf_u*)(c3), acc31 = *(const v8sf_u*)(c3 + 8);
  for (int64_t p = 0; p < kc; ++p) {
    const float* arow = apanel + p * kMr;
    const float* brow = bpanel + p * 16;
    const v8sf b0 = *(const v8sf_u*)(brow);
    const v8sf b1 = *(const v8sf_u*)(brow + 8);
    acc00 += arow[0] * b0;
    acc01 += arow[0] * b1;
    acc10 += arow[1] * b0;
    acc11 += arow[1] * b1;
    acc20 += arow[2] * b0;
    acc21 += arow[2] * b1;
    acc30 += arow[3] * b0;
    acc31 += arow[3] * b1;
  }
  *(v8sf_u*)(c0) = acc00;
  *(v8sf_u*)(c0 + 8) = acc01;
  *(v8sf_u*)(c1) = acc10;
  *(v8sf_u*)(c1 + 8) = acc11;
  *(v8sf_u*)(c2) = acc20;
  *(v8sf_u*)(c2 + 8) = acc21;
  *(v8sf_u*)(c3) = acc30;
  *(v8sf_u*)(c3 + 8) = acc31;
}

// 4 x 8 tile = eight 4-wide accumulators; fits the 16 XMM registers on
// SSE-only hosts.
void MicroKernel8(const float* apanel, const float* bpanel, float* c,
                  int64_t ldc, int64_t kc) {
  float* c0 = c;
  float* c1 = c + ldc;
  float* c2 = c + 2 * ldc;
  float* c3 = c + 3 * ldc;
  v4sf acc00 = *(const v4sf_u*)(c0), acc01 = *(const v4sf_u*)(c0 + 4);
  v4sf acc10 = *(const v4sf_u*)(c1), acc11 = *(const v4sf_u*)(c1 + 4);
  v4sf acc20 = *(const v4sf_u*)(c2), acc21 = *(const v4sf_u*)(c2 + 4);
  v4sf acc30 = *(const v4sf_u*)(c3), acc31 = *(const v4sf_u*)(c3 + 4);
  for (int64_t p = 0; p < kc; ++p) {
    const float* arow = apanel + p * kMr;
    const float* brow = bpanel + p * 8;
    const v4sf b0 = *(const v4sf_u*)(brow);
    const v4sf b1 = *(const v4sf_u*)(brow + 4);
    acc00 += arow[0] * b0;
    acc01 += arow[0] * b1;
    acc10 += arow[1] * b0;
    acc11 += arow[1] * b1;
    acc20 += arow[2] * b0;
    acc21 += arow[2] * b1;
    acc30 += arow[3] * b0;
    acc31 += arow[3] * b1;
  }
  *(v4sf_u*)(c0) = acc00;
  *(v4sf_u*)(c0 + 4) = acc01;
  *(v4sf_u*)(c1) = acc10;
  *(v4sf_u*)(c1 + 4) = acc11;
  *(v4sf_u*)(c2) = acc20;
  *(v4sf_u*)(c2 + 4) = acc21;
  *(v4sf_u*)(c3) = acc30;
  *(v4sf_u*)(c3 + 4) = acc31;
}

// Ragged edge tile: same arithmetic, runtime bounds.
void MicroKernelEdge(const float* apanel, const float* bpanel, float* c,
                     int64_t ldc, int64_t kc, int64_t mr, int64_t nr,
                     int64_t nr_tile) {
  float acc[kMr][kMaxNr];
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t j = 0; j < nr; ++j) acc[r][j] = c[r * ldc + j];
  }
  for (int64_t p = 0; p < kc; ++p) {
    const float* arow = apanel + p * kMr;
    const float* brow = bpanel + p * nr_tile;
    for (int64_t r = 0; r < mr; ++r) {
      const float av = arow[r];
      for (int64_t j = 0; j < nr; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t j = 0; j < nr; ++j) c[r * ldc + j] = acc[r][j];
  }
}

// The seed's scalar kernels (minus the zero-skip): best for tiny problems
// where packing overhead dominates.
void SmallGemm(const float* a, const float* b, float* c, int64_t n, int64_t k,
               int64_t m) {
  for (int64_t i = 0; i < n; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * m;
    for (int64_t p = 0; p < k; ++p) {
      const float a_ip = a_row[p];
      const float* b_row = b + p * m;
      for (int64_t j = 0; j < m; ++j) {
        c_row[j] += a_ip * b_row[j];
      }
    }
  }
}

void SmallGemmTransposedB(const float* a, const float* b, float* c, int64_t n,
                          int64_t k, int64_t m) {
  for (int64_t i = 0; i < n; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * m;
    for (int64_t j = 0; j < m; ++j) {
      const float* b_row = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      c_row[j] += acc;
    }
  }
}

// Serial cache-blocked GEMM over `n` rows of A. jc/pc/ic nesting follows
// BLIS: a packed B panel is reused across every row block, a packed A block
// across every column panel.
void BlockedGemm(const float* a, const float* b, float* c, int64_t n,
                 int64_t k, int64_t m, bool b_transposed) {
  const int64_t ldb = b_transposed ? k : m;
  const int64_t nr_tile = NrTile();
  // Fixed-size pack scratch, allocated once per worker thread and reused by
  // every GEMM it runs: after warm-up the hot path touches no heap, which
  // the tape-free inference forward relies on (zero allocations per serve
  // request). Each ParallelForRange worker runs its row slab serially, so
  // the buffers are never shared.
  thread_local const auto apack = std::make_unique<float[]>(kMc * kKc);
  thread_local const auto bpack = std::make_unique<float[]>(kKc * kNc);

  for (int64_t jc = 0; jc < m; jc += kNc) {
    const int64_t nc = std::min(kNc, m - jc);
    for (int64_t pc = 0; pc < k; pc += kKc) {
      const int64_t kc = std::min(kKc, k - pc);
      PackB(b, ldb, b_transposed, pc, jc, kc, nc, nr_tile, bpack.get());
      for (int64_t ic = 0; ic < n; ic += kMc) {
        const int64_t mc = std::min(kMc, n - ic);
        PackA(a, k, ic, pc, mc, kc, apack.get());
        for (int64_t j0 = 0; j0 < nc; j0 += nr_tile) {
          const int64_t nr = std::min(nr_tile, nc - j0);
          for (int64_t i0 = 0; i0 < mc; i0 += kMr) {
            const int64_t mr = std::min(kMr, mc - i0);
            const float* ap = apack.get() + i0 * kc;
            const float* bp = bpack.get() + j0 * kc;
            float* ct = c + (ic + i0) * m + jc + j0;
            if (mr == kMr && nr == nr_tile) {
              if (nr_tile == 16) {
                MicroKernel16(ap, bp, ct, m, kc);
              } else {
                MicroKernel8(ap, bp, ct, m, kc);
              }
            } else {
              MicroKernelEdge(ap, bp, ct, m, kc, mr, nr, nr_tile);
            }
          }
        }
      }
    }
  }
}

// Serial GEMM over a row slab, choosing the small or blocked path.
void GemmRows(const float* a, const float* b, float* c, int64_t n, int64_t k,
              int64_t m, bool b_transposed) {
  if (n * k * m < kSmallGemmMacs) {
    if (b_transposed) {
      SmallGemmTransposedB(a, b, c, n, k, m);
    } else {
      SmallGemm(a, b, c, n, k, m);
    }
    return;
  }
  BlockedGemm(a, b, c, n, k, m, b_transposed);
}

// Cost of one GEMM output row: 2km MACs; streams the A row and (amortised,
// cache-resident across rows) the B panel.
LoopCost GemmRowCost(int64_t k, int64_t m) {
  return {2.0 * static_cast<double>(k) * static_cast<double>(m),
          4.0 * static_cast<double>(k + m)};
}

// Top-level parallel GEMM: shards rows of A across the runtime, with the
// row grain planned from the per-row cost (and floored at the micro-tile
// height so slabs stay tile-aligned).
void LaunchGemm(const float* a, const float* b, float* c, int64_t n,
                int64_t k, int64_t m, bool b_transposed) {
  const int64_t grain = std::max(kMr, PlanGrain(n, GemmRowCost(k, m)));
  ParallelForRange(0, n, grain, [&](int64_t r0, int64_t r1) {
    GemmRows(a + r0 * k, b, c + r0 * m, r1 - r0, k, m, b_transposed);
  });
}

// Batched variant. When the batch has at least one matrix per lane, tasks
// are whole matrices: each matrix is packed exactly once, and many small
// irregular GEMMs coalesce into one chunk instead of being shredded into
// row slivers that re-pack B and thrash the queues (the profile HIRE's
// per-context MHSA produces). Small batches of large matrices fall back to
// sharding the flattened (batch, row) space so they can still fill lanes.
void LaunchBatchedGemm(const float* a, const float* b, float* c,
                       int64_t batch, int64_t n, int64_t k, int64_t m,
                       bool b_transposed) {
  const int64_t b_stride = b_transposed ? m * k : k * m;
  const LoopCost row_cost = GemmRowCost(k, m);
  if (batch >= GlobalThreads()) {
    const LoopCost matrix_cost = {row_cost.flops_per_index * n,
                                  4.0 * static_cast<double>(n * k + k * m +
                                                            n * m)};
    const int64_t grain = PlanGrain(batch, matrix_cost);
    ParallelForRange(0, batch, grain, [&](int64_t s0, int64_t s1) {
      for (int64_t s = s0; s < s1; ++s) {
        GemmRows(a + s * n * k, b + s * b_stride, c + s * n * m, n, k, m,
                 b_transposed);
      }
    });
    return;
  }
  const int64_t grain = std::max(kMr, PlanGrain(batch * n, row_cost));
  ParallelForRange(0, batch * n, grain, [&](int64_t g0, int64_t g1) {
    int64_t g = g0;
    while (g < g1) {
      const int64_t s = g / n;
      const int64_t r0 = g - s * n;
      const int64_t rows = std::min(n - r0, g1 - g);
      GemmRows(a + (s * n + r0) * k, b + s * b_stride, c + (s * n + r0) * m,
               rows, k, m, b_transposed);
      g += rows;
    }
  });
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, "Add", std::plus<float>());
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, "Sub", std::minus<float>());
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, "Mul", std::multiplies<float>());
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, "Div", std::divides<float>());
}

Tensor AddScalar(const Tensor& a, float value) {
  return ElementwiseUnary(a, [value](float x) { return x + value; });
}

Tensor MulScalar(const Tensor& a, float value) {
  return ElementwiseUnary(a, [value](float x) { return x * value; });
}

Tensor Neg(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return -x; });
}

Tensor Exp(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return std::exp(x); },
                          kTranscendentalFlops);
}

Tensor Log(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return std::log(x); },
                          kTranscendentalFlops);
}

Tensor Sqrt(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return std::sqrt(x); }, 8.0);
}

Tensor Abs(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return std::fabs(x); });
}

Tensor Square(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return x * x; });
}

Tensor Sigmoid(const Tensor& a) {
  return ElementwiseUnary(
      a,
      [](float x) {
        return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                         : std::exp(x) / (1.0f + std::exp(x));
      },
      kTranscendentalFlops);
}

Tensor Relu(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor Tanh(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return std::tanh(x); },
                          kTranscendentalFlops);
}

Tensor Clamp(const Tensor& a, float lo, float hi) {
  HIRE_CHECK_LE(lo, hi);
  return ElementwiseUnary(a, [lo, hi](float x) { return std::clamp(x, lo, hi); });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  HIRE_CHECK_EQ(a.dim(), 2);
  HIRE_CHECK_EQ(b.dim(), 2);
  HIRE_CHECK_EQ(a.shape(1), b.shape(0))
      << "MatMul " << a.ShapeString() << " x " << b.ShapeString();
  ScopedKernelTimer timer(KernelCategory::kMatMul);
  Tensor out({a.shape(0), b.shape(1)});
  LaunchGemm(a.data(), b.data(), out.data(), a.shape(0), a.shape(1),
             b.shape(1), /*b_transposed=*/false);
  return out;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  HIRE_CHECK_EQ(a.dim(), 2);
  HIRE_CHECK_EQ(b.dim(), 2);
  HIRE_CHECK_EQ(a.shape(1), b.shape(1))
      << "MatMulTransposedB " << a.ShapeString() << " x " << b.ShapeString();
  ScopedKernelTimer timer(KernelCategory::kMatMul);
  Tensor out({a.shape(0), b.shape(0)});
  LaunchGemm(a.data(), b.data(), out.data(), a.shape(0), a.shape(1),
             b.shape(0), /*b_transposed=*/true);
  return out;
}

Tensor BatchedMatMul(const Tensor& a, const Tensor& b) {
  HIRE_CHECK_EQ(a.dim(), 3);
  HIRE_CHECK_EQ(b.dim(), 3);
  HIRE_CHECK_EQ(a.shape(0), b.shape(0));
  HIRE_CHECK_EQ(a.shape(2), b.shape(1))
      << "BatchedMatMul " << a.ShapeString() << " x " << b.ShapeString();
  ScopedKernelTimer timer(KernelCategory::kMatMul);
  Tensor out({a.shape(0), a.shape(1), b.shape(2)});
  LaunchBatchedGemm(a.data(), b.data(), out.data(), a.shape(0), a.shape(1),
                    a.shape(2), b.shape(2), /*b_transposed=*/false);
  return out;
}

Tensor BatchedMatMulTransposedB(const Tensor& a, const Tensor& b) {
  HIRE_CHECK_EQ(a.dim(), 3);
  HIRE_CHECK_EQ(b.dim(), 3);
  HIRE_CHECK_EQ(a.shape(0), b.shape(0));
  HIRE_CHECK_EQ(a.shape(2), b.shape(2))
      << "BatchedMatMulTransposedB " << a.ShapeString() << " x "
      << b.ShapeString();
  ScopedKernelTimer timer(KernelCategory::kMatMul);
  Tensor out({a.shape(0), a.shape(1), b.shape(1)});
  LaunchBatchedGemm(a.data(), b.data(), out.data(), a.shape(0), a.shape(1),
                    a.shape(2), b.shape(1), /*b_transposed=*/true);
  return out;
}

Tensor AddBias(const Tensor& x, const Tensor& bias) {
  HIRE_CHECK_EQ(bias.dim(), 1);
  HIRE_CHECK_GE(x.dim(), 1);
  const int64_t d = bias.shape(0);
  HIRE_CHECK_EQ(x.shape(-1), d)
      << "AddBias " << x.ShapeString() << " + " << bias.ShapeString();
  Tensor out = x;
  float* po = out.data();
  const float* pb = bias.data();
  const int64_t rows = x.size() / d;
  const int64_t grain =
      PlanGrain(rows, {static_cast<double>(d), 12.0 * static_cast<double>(d)});
  ParallelForRange(0, rows, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      float* row = po + r * d;
      for (int64_t j = 0; j < d; ++j) row[j] += pb[j];
    }
  });
  return out;
}

Tensor Permute(const Tensor& a, const std::vector<int>& axes) {
  const int rank = a.dim();
  HIRE_CHECK_EQ(static_cast<int>(axes.size()), rank);
  std::vector<bool> seen(static_cast<size_t>(rank), false);
  std::vector<int64_t> new_shape(static_cast<size_t>(rank));
  for (int i = 0; i < rank; ++i) {
    const int axis = axes[static_cast<size_t>(i)];
    HIRE_CHECK(axis >= 0 && axis < rank && !seen[static_cast<size_t>(axis)])
        << "bad permutation axis " << axis;
    seen[static_cast<size_t>(axis)] = true;
    new_shape[static_cast<size_t>(i)] = a.shape(axis);
  }

  Tensor out(new_shape);
  const std::vector<int64_t> in_strides = a.Strides();
  const std::vector<int64_t> out_strides = out.Strides();
  // For each output element, reconstruct the multi-index and gather from
  // the input. The div/mod chain dominates, charged as flops.
  const int64_t grain = PlanGrain(a.size(), {8.0 * rank, 8.0});
  ParallelForRange(0, a.size(), grain, [&](int64_t lo, int64_t hi) {
    for (int64_t flat = lo; flat < hi; ++flat) {
      int64_t rem = flat;
      int64_t src = 0;
      for (int i = 0; i < rank; ++i) {
        const int64_t coord = rem / out_strides[static_cast<size_t>(i)];
        rem %= out_strides[static_cast<size_t>(i)];
        src +=
            coord * in_strides[static_cast<size_t>(axes[static_cast<size_t>(i)])];
      }
      out.flat(flat) = a.flat(src);
    }
  });
  return out;
}

Tensor TransposeLast2(const Tensor& a) {
  const int rank = a.dim();
  HIRE_CHECK_GE(rank, 2);
  std::vector<int> axes(static_cast<size_t>(rank));
  for (int i = 0; i < rank; ++i) axes[static_cast<size_t>(i)] = i;
  std::swap(axes[static_cast<size_t>(rank - 1)],
            axes[static_cast<size_t>(rank - 2)]);
  return Permute(a, axes);
}

Tensor Concat(const std::vector<Tensor>& parts, int axis) {
  HIRE_CHECK(!parts.empty());
  const int rank = parts[0].dim();
  if (axis < 0) axis += rank;
  HIRE_CHECK(axis >= 0 && axis < rank) << "concat axis " << axis;

  std::vector<int64_t> out_shape = parts[0].shape();
  int64_t concat_extent = 0;
  for (const Tensor& part : parts) {
    HIRE_CHECK_EQ(part.dim(), rank);
    for (int i = 0; i < rank; ++i) {
      if (i == axis) continue;
      HIRE_CHECK_EQ(part.shape(i), out_shape[static_cast<size_t>(i)])
          << "concat shape mismatch on axis " << i;
    }
    concat_extent += part.shape(axis);
  }
  out_shape[static_cast<size_t>(axis)] = concat_extent;

  Tensor out(out_shape);
  // Views as [outer, axis_extent, inner] blocks.
  int64_t outer = 1;
  for (int i = 0; i < axis; ++i) outer *= out_shape[static_cast<size_t>(i)];
  int64_t inner = 1;
  for (int i = axis + 1; i < rank; ++i) {
    inner *= out_shape[static_cast<size_t>(i)];
  }

  int64_t offset = 0;
  for (const Tensor& part : parts) {
    const int64_t extent = part.shape(axis);
    for (int64_t o = 0; o < outer; ++o) {
      const float* src = part.data() + o * extent * inner;
      float* dst = out.data() + (o * concat_extent + offset) * inner;
      std::copy(src, src + extent * inner, dst);
    }
    offset += extent;
  }
  return out;
}

Tensor Slice(const Tensor& a, int axis, int64_t start, int64_t length) {
  const int rank = a.dim();
  if (axis < 0) axis += rank;
  HIRE_CHECK(axis >= 0 && axis < rank) << "slice axis " << axis;
  HIRE_CHECK(start >= 0 && length > 0 && start + length <= a.shape(axis))
      << "slice [" << start << ", " << start + length << ") of axis " << axis
      << " in " << a.ShapeString();

  std::vector<int64_t> out_shape = a.shape();
  out_shape[static_cast<size_t>(axis)] = length;
  Tensor out(out_shape);

  int64_t outer = 1;
  for (int i = 0; i < axis; ++i) outer *= a.shape(i);
  int64_t inner = 1;
  for (int i = axis + 1; i < rank; ++i) inner *= a.shape(i);
  const int64_t in_extent = a.shape(axis);

  for (int64_t o = 0; o < outer; ++o) {
    const float* src = a.data() + (o * in_extent + start) * inner;
    float* dst = out.data() + o * length * inner;
    std::copy(src, src + length * inner, dst);
  }
  return out;
}

float SumAll(const Tensor& a) {
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) acc += a.flat(i);
  return static_cast<float>(acc);
}

float MeanAll(const Tensor& a) {
  HIRE_CHECK_GT(a.size(), 0);
  return SumAll(a) / static_cast<float>(a.size());
}

float MaxAll(const Tensor& a) {
  HIRE_CHECK_GT(a.size(), 0);
  float best = a.flat(0);
  for (int64_t i = 1; i < a.size(); ++i) best = std::max(best, a.flat(i));
  return best;
}

float MinAll(const Tensor& a) {
  HIRE_CHECK_GT(a.size(), 0);
  float best = a.flat(0);
  for (int64_t i = 1; i < a.size(); ++i) best = std::min(best, a.flat(i));
  return best;
}

float Norm(const Tensor& a) {
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    const double x = a.flat(i);
    acc += x * x;
  }
  return static_cast<float>(std::sqrt(acc));
}

Tensor Sum(const Tensor& a, int axis) {
  const int rank = a.dim();
  if (axis < 0) axis += rank;
  HIRE_CHECK(axis >= 0 && axis < rank) << "sum axis " << axis;

  std::vector<int64_t> out_shape;
  for (int i = 0; i < rank; ++i) {
    if (i != axis) out_shape.push_back(a.shape(i));
  }
  if (out_shape.empty()) out_shape.push_back(1);
  Tensor out(out_shape);

  int64_t outer = 1;
  for (int i = 0; i < axis; ++i) outer *= a.shape(i);
  int64_t inner = 1;
  for (int i = axis + 1; i < rank; ++i) inner *= a.shape(i);
  const int64_t extent = a.shape(axis);

  // Each output element dst[o * inner + i] accumulates its `extent` terms in
  // ascending order on exactly one worker, so sharding either the outer or
  // the inner dimension leaves results bitwise identical to serial.
  if (outer > 1) {
    const double per_outer = static_cast<double>(extent * inner);
    const int64_t grain =
        PlanGrain(outer, {per_outer, 4.0 * per_outer + 8.0 * inner});
    ParallelForRange(0, outer, grain, [&](int64_t lo, int64_t hi) {
      for (int64_t o = lo; o < hi; ++o) {
        for (int64_t e = 0; e < extent; ++e) {
          const float* src = a.data() + (o * extent + e) * inner;
          float* dst = out.data() + o * inner;
          for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
        }
      }
    });
  } else {
    // Leading-axis reduction: each worker owns a contiguous stripe of output
    // columns and streams every row through it, accumulating straight into
    // its out[] slice — exactly the seed's row-major loop restricted to a
    // column range, so the serial path is the seed path and a single chunk
    // costs nothing extra. Stripes are floored at 64 columns (256 B):
    // narrower strips turn the row-major stream into scattered cache-line
    // picks and made the old threaded path 4x *slower* than serial. Row
    // order inside a column never changes, so any thread count (including
    // 1, which runs the whole range inline) is bitwise identical.
    const int64_t grain = std::max<int64_t>(
        64, PlanGrain(inner, {static_cast<double>(extent),
                              4.0 * static_cast<double>(extent)}));
    ParallelForRange(0, inner, grain, [&](int64_t lo, int64_t hi) {
      float* dst = out.data();
      for (int64_t e = 0; e < extent; ++e) {
        const float* src = a.data() + e * inner;
        for (int64_t i = lo; i < hi; ++i) dst[i] += src[i];
      }
    });
  }
  return out;
}

Tensor Mean(const Tensor& a, int axis) {
  const int rank = a.dim();
  const int resolved = axis < 0 ? axis + rank : axis;
  Tensor sum = Sum(a, axis);
  return MulScalar(sum, 1.0f / static_cast<float>(a.shape(resolved)));
}

Tensor Softmax(const Tensor& a) {
  HIRE_CHECK_GE(a.dim(), 1);
  ScopedKernelTimer timer(KernelCategory::kSoftmax);
  const int64_t d = a.shape(-1);
  const int64_t rows = a.size() / d;
  Tensor out(a.shape());
  const int64_t grain = PlanGrain(
      rows, {(kTranscendentalFlops + 4.0) * static_cast<double>(d),
             8.0 * static_cast<double>(d)});
  ParallelForRange(0, rows, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* src = a.data() + r * d;
      float* dst = out.data() + r * d;
      float row_max = src[0];
      for (int64_t j = 1; j < d; ++j) row_max = std::max(row_max, src[j]);
      double denom = 0.0;
      for (int64_t j = 0; j < d; ++j) {
        dst[j] = std::exp(src[j] - row_max);
        denom += dst[j];
      }
      const float inv = static_cast<float>(1.0 / denom);
      for (int64_t j = 0; j < d; ++j) dst[j] *= inv;
    }
  });
  return out;
}

namespace {

// Epilogue rounding mirrors the unfused chain exactly: one round for the
// bias add (AddBias), one for the activation (ops::Sigmoid's sign-split
// form / Relu), one for the scalar (MulScalar).
inline float ApplyEpilogue(float x, const float* bias, int64_t j,
                           Activation act, float post_scale) {
  float v = bias != nullptr ? x + bias[j] : x;
  switch (act) {
    case Activation::kNone:
      break;
    case Activation::kSigmoid:
      v = v >= 0.0f ? 1.0f / (1.0f + std::exp(-v))
                    : std::exp(v) / (1.0f + std::exp(v));
      break;
    case Activation::kRelu:
      v = v > 0.0f ? v : 0.0f;
      break;
  }
  return v * post_scale;
}

}  // namespace

void GemmBiasActInto(const float* a, const float* b, const float* bias,
                     float* c, int64_t n, int64_t k, int64_t m,
                     bool b_transposed, Activation act, float post_scale) {
  ScopedKernelTimer timer(KernelCategory::kInferFusedGemm);
  std::fill(c, c + n * m, 0.0f);
  LaunchGemm(a, b, c, n, k, m, b_transposed);
  const double act_flops =
      act == Activation::kSigmoid ? kTranscendentalFlops : 1.0;
  const int64_t grain = PlanGrain(
      n, {(2.0 + act_flops) * static_cast<double>(m),
          12.0 * static_cast<double>(m)});
  ParallelForRange(0, n, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      float* row = c + i * m;
      for (int64_t j = 0; j < m; ++j) {
        row[j] = ApplyEpilogue(row[j], bias, j, act, post_scale);
      }
    }
  });
}

Tensor GemmBiasAct(const Tensor& a, const Tensor& b, const Tensor& bias,
                   Activation act, float post_scale) {
  HIRE_CHECK_EQ(a.dim(), 2);
  HIRE_CHECK_EQ(b.dim(), 2);
  HIRE_CHECK_EQ(a.shape(1), b.shape(0))
      << "GemmBiasAct " << a.ShapeString() << " x " << b.ShapeString();
  HIRE_CHECK_EQ(bias.dim(), 1);
  HIRE_CHECK_EQ(bias.shape(0), b.shape(1));
  Tensor out({a.shape(0), b.shape(1)});
  GemmBiasActInto(a.data(), b.data(), bias.data(), out.data(), a.shape(0),
                  a.shape(1), b.shape(1), /*b_transposed=*/false, act,
                  post_scale);
  return out;
}

void OnlineSoftmaxWeightedSumInto(const float* q, int64_t q_stride,
                                  const float* k, int64_t k_stride,
                                  const float* v, int64_t v_stride,
                                  float* out, int64_t out_stride,
                                  int64_t tokens, int64_t head_dim,
                                  float scale) {
  for (int64_t i = 0; i < tokens; ++i) {
    const float* qi = q + i * q_stride;
    float* oi = out + i * out_stride;
    // The output row doubles as the weighted-value accumulator: when the
    // running max rises, the accumulated row and mass are rescaled by
    // exp(m_old - m_new), so no per-row scratch is needed. The row must
    // start at exactly zero (not merely be rescaled by exp(-inf) == 0 on
    // the first step): 0 * NaN from stale arena bits would poison it.
    for (int64_t c = 0; c < head_dim; ++c) oi[c] = 0.0f;
    float m = -std::numeric_limits<float>::infinity();
    double mass = 0.0;  // double like Softmax's denominator
    for (int64_t j = 0; j < tokens; ++j) {
      const float* kj = k + j * k_stride;
      float dot = 0.0f;
      for (int64_t p = 0; p < head_dim; ++p) dot += qi[p] * kj[p];
      const float s = dot * scale;
      if (s > m) {
        const float rescale = std::exp(m - s);
        for (int64_t c = 0; c < head_dim; ++c) oi[c] *= rescale;
        mass *= rescale;
        m = s;
      }
      const float w = std::exp(s - m);
      mass += w;
      const float* vj = v + j * v_stride;
      for (int64_t c = 0; c < head_dim; ++c) oi[c] += w * vj[c];
    }
    const float inv = static_cast<float>(1.0 / mass);
    for (int64_t c = 0; c < head_dim; ++c) oi[c] *= inv;
  }
}

Tensor OnlineSoftmaxWeightedSum(const Tensor& q, const Tensor& k,
                                const Tensor& v, float scale) {
  HIRE_CHECK_EQ(q.dim(), 3);
  HIRE_CHECK(q.SameShape(k) && q.SameShape(v))
      << "OnlineSoftmaxWeightedSum " << q.ShapeString() << " / "
      << k.ShapeString() << " / " << v.ShapeString();
  ScopedKernelTimer timer(KernelCategory::kInferFusedAttention);
  const int64_t batch = q.shape(0);
  const int64_t tokens = q.shape(1);
  const int64_t dim = q.shape(2);
  Tensor out(q.shape());
  const double t = static_cast<double>(tokens);
  const double d = static_cast<double>(dim);
  const int64_t grain = PlanGrain(
      batch, {t * t * (4.0 * d + kTranscendentalFlops), 12.0 * t * d});
  ParallelForRange(0, batch, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s) {
      const int64_t offset = s * tokens * dim;
      OnlineSoftmaxWeightedSumInto(q.data() + offset, dim, k.data() + offset,
                                   dim, v.data() + offset, dim,
                                   out.data() + offset, dim, tokens, dim,
                                   scale);
    }
  });
  return out;
}

bool AllClose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (!a.SameShape(b)) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    const float diff = std::fabs(a.flat(i) - b.flat(i));
    if (diff > atol + rtol * std::fabs(b.flat(i))) return false;
  }
  return true;
}

}  // namespace ops
}  // namespace hire
