#ifndef HIRE_TENSOR_RANDOM_H_
#define HIRE_TENSOR_RANDOM_H_

#include <array>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace hire {

/// Deterministic pseudo-random generator (xoshiro256**). Every stochastic
/// component in the library (initialisation, sampling, masking, data
/// synthesis) draws from an explicitly seeded Rng so that all experiments are
/// reproducible.
class Rng {
 public:
  /// Seeds the generator; the same seed yields the same stream everywhere.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box–Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Uniform integer in [0, n); n must be positive.
  int64_t UniformInt(int64_t n);

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (int64_t i = static_cast<int64_t>(values->size()) - 1; i > 0; --i) {
      const int64_t j = UniformInt(i + 1);
      std::swap((*values)[static_cast<size_t>(i)],
                (*values)[static_cast<size_t>(j)]);
    }
  }

  /// Samples `k` distinct indices from [0, n) uniformly (k <= n).
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Forks an independent stream; the child is a pure function of the parent
  /// state and `salt`, so forked streams are reproducible too.
  Rng Fork(uint64_t salt);

  /// Number of 64-bit words in the exported state: the four xoshiro words
  /// plus the Box–Muller cache (flag + value bits).
  static constexpr size_t kStateWords = 6;

  /// Exports the complete generator state. A generator restored with
  /// RestoreState resumes the exact output stream, including the cached
  /// second normal deviate — this is what makes checkpoint/resume bitwise
  /// identical to an uninterrupted run.
  std::array<uint64_t, kStateWords> ExportState() const;
  void RestoreState(const std::array<uint64_t, kStateWords>& words);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Tensor filled with U(lo, hi) draws.
Tensor RandomUniform(std::vector<int64_t> shape, float lo, float hi, Rng* rng);

/// Tensor filled with N(mean, stddev) draws.
Tensor RandomNormal(std::vector<int64_t> shape, float mean, float stddev,
                    Rng* rng);

}  // namespace hire

#endif  // HIRE_TENSOR_RANDOM_H_
