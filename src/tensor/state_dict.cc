#include "tensor/state_dict.h"

#include <bit>
#include <utility>

#include "utils/check.h"

namespace hire {

void StateDict::PutTensor(const std::string& name, Tensor value) {
  const auto [it, inserted] = tensors.emplace(name, std::move(value));
  (void)it;
  HIRE_CHECK(inserted) << "duplicate tensor '" << name << "' in StateDict";
}

const Tensor& StateDict::GetTensor(const std::string& name) const {
  auto it = tensors.find(name);
  HIRE_CHECK(it != tensors.end()) << "StateDict has no tensor '" << name << "'";
  return it->second;
}

bool StateDict::HasTensor(const std::string& name) const {
  return tensors.count(name) > 0;
}

void StateDict::PutScalar(const std::string& name, uint64_t value) {
  const auto [it, inserted] = scalars.emplace(name, value);
  (void)it;
  HIRE_CHECK(inserted) << "duplicate scalar '" << name << "' in StateDict";
}

uint64_t StateDict::GetScalar(const std::string& name) const {
  auto it = scalars.find(name);
  HIRE_CHECK(it != scalars.end()) << "StateDict has no scalar '" << name << "'";
  return it->second;
}

bool StateDict::HasScalar(const std::string& name) const {
  return scalars.count(name) > 0;
}

void StateDict::PutFloat(const std::string& name, float value) {
  PutScalar(name, static_cast<uint64_t>(std::bit_cast<uint32_t>(value)));
}

float StateDict::GetFloat(const std::string& name) const {
  return std::bit_cast<float>(static_cast<uint32_t>(GetScalar(name)));
}

void StateDict::Merge(const StateDict& other, const std::string& prefix) {
  for (const auto& [name, value] : other.tensors) {
    PutTensor(prefix + name, value);
  }
  for (const auto& [name, value] : other.scalars) {
    PutScalar(prefix + name, value);
  }
}

StateDict StateDict::Extract(const std::string& prefix) const {
  StateDict out;
  for (const auto& [name, value] : tensors) {
    if (name.rfind(prefix, 0) == 0) {
      out.tensors.emplace(name.substr(prefix.size()), value);
    }
  }
  for (const auto& [name, value] : scalars) {
    if (name.rfind(prefix, 0) == 0) {
      out.scalars.emplace(name.substr(prefix.size()), value);
    }
  }
  return out;
}

}  // namespace hire
