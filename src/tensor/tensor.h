#ifndef HIRE_TENSOR_TENSOR_H_
#define HIRE_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace hire {

/// Dense, row-major, contiguous float32 tensor. The only numeric container in
/// the library: model parameters, activations and gradients are all Tensors.
///
/// Copying performs a deep copy of the buffer; moves are O(1). All shape and
/// index arguments are validated with HIRE_CHECK, so misuse throws
/// hire::CheckError with a descriptive message rather than corrupting memory.
class Tensor {
 public:
  /// Creates an empty 0-element tensor with shape {}.
  Tensor() = default;

  /// Creates a zero-initialised tensor of the given shape. All dimensions
  /// must be positive.
  explicit Tensor(std::vector<int64_t> shape);

  /// Creates a tensor that adopts `data`; data.size() must equal the product
  /// of `shape`.
  Tensor(std::vector<int64_t> shape, std::vector<float> data);

  /// A scalar (0-dim is represented as shape {1}).
  static Tensor Scalar(float value);

  /// Zero-filled tensor.
  static Tensor Zeros(std::vector<int64_t> shape);

  /// One-filled tensor.
  static Tensor Ones(std::vector<int64_t> shape);

  /// Constant-filled tensor.
  static Tensor Full(std::vector<int64_t> shape, float value);

  /// 1-D tensor from an explicit value list.
  static Tensor FromVector(std::vector<float> values);

  /// Number of dimensions.
  int dim() const { return static_cast<int>(shape_.size()); }

  /// Full shape vector.
  const std::vector<int64_t>& shape() const { return shape_; }

  /// Extent of axis `axis`; negative axes count from the end.
  int64_t shape(int axis) const;

  /// Total number of elements.
  int64_t size() const { return static_cast<int64_t>(data_.size()); }

  /// True when the tensor holds no elements.
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Element accessors with bounds checks; the overload arity must match
  /// dim().
  float& at(int64_t i);
  float at(int64_t i) const;
  float& at(int64_t i, int64_t j);
  float at(int64_t i, int64_t j) const;
  float& at(int64_t i, int64_t j, int64_t k);
  float at(int64_t i, int64_t j, int64_t k) const;
  float& at(int64_t i, int64_t j, int64_t k, int64_t l);
  float at(int64_t i, int64_t j, int64_t k, int64_t l) const;

  /// Unchecked flat accessor (row-major order).
  float& flat(int64_t index) { return data_[static_cast<size_t>(index)]; }
  float flat(int64_t index) const { return data_[static_cast<size_t>(index)]; }

  /// Returns a copy with a new shape; the element count must be preserved.
  /// One dimension may be -1 and is inferred.
  Tensor Reshape(std::vector<int64_t> new_shape) const;

  /// True when shapes match exactly.
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Sets every element to `value`.
  void Fill(float value);

  /// Human-readable shape, e.g. "[2, 3, 4]".
  std::string ShapeString() const;

  /// Debug rendering of shape and (truncated) contents.
  std::string ToString() const;

  /// Row-major strides for the current shape.
  std::vector<int64_t> Strides() const;

 private:
  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

/// Formats a shape vector like "[2, 3]".
std::string ShapeToString(const std::vector<int64_t>& shape);

/// Product of all dimensions; validates that each dimension is positive.
int64_t ShapeNumElements(const std::vector<int64_t>& shape);

}  // namespace hire

#endif  // HIRE_TENSOR_TENSOR_H_
