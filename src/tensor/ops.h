#ifndef HIRE_TENSOR_OPS_H_
#define HIRE_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace hire {
namespace ops {

// ---------------------------------------------------------------------------
// Elementwise binary operations (shapes must match exactly).
// ---------------------------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

// ---------------------------------------------------------------------------
// Scalar and unary operations.
// ---------------------------------------------------------------------------

Tensor AddScalar(const Tensor& a, float value);
Tensor MulScalar(const Tensor& a, float value);
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Clamp(const Tensor& a, float lo, float hi);

// ---------------------------------------------------------------------------
// Linear algebra.
// ---------------------------------------------------------------------------

/// [n, k] x [k, m] -> [n, m].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// [n, k] x [m, k]^T -> [n, m]; avoids materialising the transpose.
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);

/// [b, n, k] x [b, k, m] -> [b, n, m].
Tensor BatchedMatMul(const Tensor& a, const Tensor& b);

/// [b, n, k] x [b, m, k]^T -> [b, n, m].
Tensor BatchedMatMulTransposedB(const Tensor& a, const Tensor& b);

/// Adds a bias row vector [d] to every row of X [..., d].
Tensor AddBias(const Tensor& x, const Tensor& bias);

// ---------------------------------------------------------------------------
// Shape manipulation.
// ---------------------------------------------------------------------------

/// Generalised transpose; `axes` must be a permutation of [0, dim).
Tensor Permute(const Tensor& a, const std::vector<int>& axes);

/// Swaps the last two axes (dim >= 2).
Tensor TransposeLast2(const Tensor& a);

/// Concatenates tensors along `axis`; all other extents must match.
Tensor Concat(const std::vector<Tensor>& parts, int axis);

/// Slices `length` entries starting at `start` along `axis`.
Tensor Slice(const Tensor& a, int axis, int64_t start, int64_t length);

// ---------------------------------------------------------------------------
// Reductions and normalisation.
// ---------------------------------------------------------------------------

float SumAll(const Tensor& a);
float MeanAll(const Tensor& a);
float MaxAll(const Tensor& a);
float MinAll(const Tensor& a);

/// L2 norm of the whole tensor (used by LAMB and gradient clipping).
float Norm(const Tensor& a);

/// Sums over `axis`, dropping it from the shape.
Tensor Sum(const Tensor& a, int axis);

/// Means over `axis`, dropping it from the shape.
Tensor Mean(const Tensor& a, int axis);

/// Numerically stable softmax along the last axis.
Tensor Softmax(const Tensor& a);

/// True when |a - b| <= atol + rtol*|b| elementwise (same shape required).
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-4f);

// ---------------------------------------------------------------------------
// Fused inference primitives. These power the tape-free forward path
// (core/inference_forward.h): the Into variants write into caller-owned
// storage (normally an InferenceArena buffer) and allocate nothing, so a
// warmed-up serve forward touches no heap. The Tensor wrappers exist for
// tests and benchmarks.
// ---------------------------------------------------------------------------

/// Epilogue activation fused into GemmBiasAct.
enum class Activation { kNone, kSigmoid, kRelu };

/// C = post_scale * act(A[n, k] x B + bias): a Linear forward (MatMul +
/// AddBias) plus an optional activation and scalar, fused into the GEMM's
/// epilogue pass instead of three tensor-sized round trips. `b` is
/// row-major [k, m], or stored transposed as [m, k] when `b_transposed`;
/// `bias` ([m] floats) may be nullptr. Per C element the arithmetic is
/// bitwise identical to the unfused chain: the shared GEMM backend
/// accumulates products in ascending-p order into a zeroed C, then one
/// rounding each for + bias, act, and * post_scale — the same order
/// MatMul / AddBias / Sigmoid / MulScalar produce.
void GemmBiasActInto(const float* a, const float* b, const float* bias,
                     float* c, int64_t n, int64_t k, int64_t m,
                     bool b_transposed = false,
                     Activation act = Activation::kNone,
                     float post_scale = 1.0f);

/// Tensor wrapper: act(a x b + bias) * post_scale, a [n, k] x b [k, m].
Tensor GemmBiasAct(const Tensor& a, const Tensor& b, const Tensor& bias,
                   Activation act = Activation::kNone,
                   float post_scale = 1.0f);

/// Single-sequence single-pass attention: out[i, :] = sum_j a_ij * v[j, :]
/// with a_ij = softmax_j(scale * <q_i, k_j>), computed in one sweep over j
/// per query via online (running-max) softmax — the t x t score matrix is
/// never materialised. Token i of q/k/v/out lives at base + i*stride
/// (strides in floats), so per-head q/k/v can be read strided straight out
/// of a fused QKV projection buffer and the result written head-merged.
/// Serial by design; callers parallelise over (batch, head) sequences.
void OnlineSoftmaxWeightedSumInto(const float* q, int64_t q_stride,
                                  const float* k, int64_t k_stride,
                                  const float* v, int64_t v_stride,
                                  float* out, int64_t out_stride,
                                  int64_t tokens, int64_t head_dim,
                                  float scale);

/// Batched tensor wrapper: q/k/v [b, t, d] -> [b, t, d], sharded over the
/// batch through the cost model.
Tensor OnlineSoftmaxWeightedSum(const Tensor& q, const Tensor& k,
                                const Tensor& v, float scale);

}  // namespace ops
}  // namespace hire

#endif  // HIRE_TENSOR_OPS_H_
