#ifndef HIRE_TENSOR_OPS_H_
#define HIRE_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace hire {
namespace ops {

// ---------------------------------------------------------------------------
// Elementwise binary operations (shapes must match exactly).
// ---------------------------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

// ---------------------------------------------------------------------------
// Scalar and unary operations.
// ---------------------------------------------------------------------------

Tensor AddScalar(const Tensor& a, float value);
Tensor MulScalar(const Tensor& a, float value);
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Clamp(const Tensor& a, float lo, float hi);

// ---------------------------------------------------------------------------
// Linear algebra.
// ---------------------------------------------------------------------------

/// [n, k] x [k, m] -> [n, m].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// [n, k] x [m, k]^T -> [n, m]; avoids materialising the transpose.
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);

/// [b, n, k] x [b, k, m] -> [b, n, m].
Tensor BatchedMatMul(const Tensor& a, const Tensor& b);

/// [b, n, k] x [b, m, k]^T -> [b, n, m].
Tensor BatchedMatMulTransposedB(const Tensor& a, const Tensor& b);

/// Adds a bias row vector [d] to every row of X [..., d].
Tensor AddBias(const Tensor& x, const Tensor& bias);

// ---------------------------------------------------------------------------
// Shape manipulation.
// ---------------------------------------------------------------------------

/// Generalised transpose; `axes` must be a permutation of [0, dim).
Tensor Permute(const Tensor& a, const std::vector<int>& axes);

/// Swaps the last two axes (dim >= 2).
Tensor TransposeLast2(const Tensor& a);

/// Concatenates tensors along `axis`; all other extents must match.
Tensor Concat(const std::vector<Tensor>& parts, int axis);

/// Slices `length` entries starting at `start` along `axis`.
Tensor Slice(const Tensor& a, int axis, int64_t start, int64_t length);

// ---------------------------------------------------------------------------
// Reductions and normalisation.
// ---------------------------------------------------------------------------

float SumAll(const Tensor& a);
float MeanAll(const Tensor& a);
float MaxAll(const Tensor& a);
float MinAll(const Tensor& a);

/// L2 norm of the whole tensor (used by LAMB and gradient clipping).
float Norm(const Tensor& a);

/// Sums over `axis`, dropping it from the shape.
Tensor Sum(const Tensor& a, int axis);

/// Means over `axis`, dropping it from the shape.
Tensor Mean(const Tensor& a, int axis);

/// Numerically stable softmax along the last axis.
Tensor Softmax(const Tensor& a);

/// True when |a - b| <= atol + rtol*|b| elementwise (same shape required).
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-4f);

}  // namespace ops
}  // namespace hire

#endif  // HIRE_TENSOR_OPS_H_
