#include "tensor/random.h"

#include <bit>
#include <cmath>
#include <numbers>

#include "utils/check.h"

namespace hire {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// SplitMix64: expands one seed word into the four xoshiro state words.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : state_) {
    word = SplitMix64(&sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  HIRE_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

int64_t Rng::UniformInt(int64_t n) {
  HIRE_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t bound = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  uint64_t draw = Next();
  while (draw >= limit) draw = Next();
  return static_cast<int64_t>(draw % bound);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  HIRE_CHECK(k >= 0 && k <= n)
      << "cannot sample " << k << " of " << n << " without replacement";
  std::vector<int64_t> indices(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) indices[static_cast<size_t>(i)] = i;
  // Partial Fisher–Yates: only the first k positions need to be mixed.
  for (int64_t i = 0; i < k; ++i) {
    const int64_t j = i + UniformInt(n - i);
    std::swap(indices[static_cast<size_t>(i)], indices[static_cast<size_t>(j)]);
  }
  indices.resize(static_cast<size_t>(k));
  return indices;
}

Rng Rng::Fork(uint64_t salt) {
  return Rng(Next() ^ (salt * 0xD6E8FEB86659FD93ull + 0xA5A5A5A5A5A5A5A5ull));
}

std::array<uint64_t, Rng::kStateWords> Rng::ExportState() const {
  return {state_[0], state_[1], state_[2], state_[3],
          has_cached_normal_ ? 1ull : 0ull,
          std::bit_cast<uint64_t>(cached_normal_)};
}

void Rng::RestoreState(const std::array<uint64_t, kStateWords>& words) {
  state_[0] = words[0];
  state_[1] = words[1];
  state_[2] = words[2];
  state_[3] = words[3];
  has_cached_normal_ = words[4] != 0;
  cached_normal_ = std::bit_cast<double>(words[5]);
}

Tensor RandomUniform(std::vector<int64_t> shape, float lo, float hi,
                     Rng* rng) {
  HIRE_CHECK(rng != nullptr);
  Tensor tensor(std::move(shape));
  for (int64_t i = 0; i < tensor.size(); ++i) {
    tensor.flat(i) = static_cast<float>(rng->Uniform(lo, hi));
  }
  return tensor;
}

Tensor RandomNormal(std::vector<int64_t> shape, float mean, float stddev,
                    Rng* rng) {
  HIRE_CHECK(rng != nullptr);
  Tensor tensor(std::move(shape));
  for (int64_t i = 0; i < tensor.size(); ++i) {
    tensor.flat(i) = static_cast<float>(rng->Normal(mean, stddev));
  }
  return tensor;
}

}  // namespace hire
