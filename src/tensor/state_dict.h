#ifndef HIRE_TENSOR_STATE_DICT_H_
#define HIRE_TENSOR_STATE_DICT_H_

#include <cstdint>
#include <map>
#include <string>

#include "tensor/tensor.h"

namespace hire {

/// Ordered, named collection of tensors and 64-bit scalars. This is the
/// in-memory form of a training snapshot: model parameters, optimiser
/// moments, step counters and RNG words all live in one StateDict, which
/// `nn::SaveStateDict`/`nn::LoadStateDict` move to and from disk.
///
/// Keys are hierarchical dotted names ("model.encoder.weight",
/// "optim.lamb.step_count"). Both maps are std::map so iteration order — and
/// therefore the serialised byte stream — is deterministic.
struct StateDict {
  std::map<std::string, Tensor> tensors;
  std::map<std::string, uint64_t> scalars;

  /// Inserts a tensor; duplicate names throw.
  void PutTensor(const std::string& name, Tensor value);
  /// Fetches a tensor; missing names throw.
  const Tensor& GetTensor(const std::string& name) const;
  bool HasTensor(const std::string& name) const;

  /// Inserts a scalar; duplicate names throw.
  void PutScalar(const std::string& name, uint64_t value);
  /// Fetches a scalar; missing names throw.
  uint64_t GetScalar(const std::string& name) const;
  bool HasScalar(const std::string& name) const;

  /// Floats are stored as their exact bit pattern so a save/load round trip
  /// is bitwise lossless (required for bitwise-identical resume).
  void PutFloat(const std::string& name, float value);
  float GetFloat(const std::string& name) const;

  /// Copies every entry of `other` into this dictionary with `prefix`
  /// prepended to the key; collisions throw.
  void Merge(const StateDict& other, const std::string& prefix = "");

  /// Sub-dictionary of all entries whose key starts with `prefix`, with the
  /// prefix stripped.
  StateDict Extract(const std::string& prefix) const;

  bool empty() const { return tensors.empty() && scalars.empty(); }
};

}  // namespace hire

#endif  // HIRE_TENSOR_STATE_DICT_H_
