#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>

#include "utils/check.h"

namespace hire {

std::string ShapeToString(const std::vector<int64_t>& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}

int64_t ShapeNumElements(const std::vector<int64_t>& shape) {
  int64_t count = 1;
  for (int64_t extent : shape) {
    HIRE_CHECK_GT(extent, 0) << "bad shape " << ShapeToString(shape);
    count *= extent;
  }
  return count;
}

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(ShapeNumElements(shape_)), 0.0f) {}

Tensor::Tensor(std::vector<int64_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  HIRE_CHECK_EQ(static_cast<int64_t>(data_.size()), ShapeNumElements(shape_))
      << "data size does not match shape " << ShapeToString(shape_);
}

Tensor Tensor::Scalar(float value) {
  return Tensor({1}, std::vector<float>{value});
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Ones(std::vector<int64_t> shape) {
  return Full(std::move(shape), 1.0f);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor tensor(std::move(shape));
  tensor.Fill(value);
  return tensor;
}

Tensor Tensor::FromVector(std::vector<float> values) {
  const int64_t count = static_cast<int64_t>(values.size());
  HIRE_CHECK_GT(count, 0);
  return Tensor({count}, std::move(values));
}

int64_t Tensor::shape(int axis) const {
  const int rank = dim();
  if (axis < 0) axis += rank;
  HIRE_CHECK(axis >= 0 && axis < rank)
      << "axis " << axis << " out of range for " << ShapeString();
  return shape_[static_cast<size_t>(axis)];
}

float& Tensor::at(int64_t i) {
  HIRE_CHECK_EQ(dim(), 1);
  HIRE_CHECK(i >= 0 && i < shape_[0]) << "index " << i << " in "
                                      << ShapeString();
  return data_[static_cast<size_t>(i)];
}

float Tensor::at(int64_t i) const { return const_cast<Tensor*>(this)->at(i); }

float& Tensor::at(int64_t i, int64_t j) {
  HIRE_CHECK_EQ(dim(), 2);
  HIRE_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1])
      << "index (" << i << ", " << j << ") in " << ShapeString();
  return data_[static_cast<size_t>(i * shape_[1] + j)];
}

float Tensor::at(int64_t i, int64_t j) const {
  return const_cast<Tensor*>(this)->at(i, j);
}

float& Tensor::at(int64_t i, int64_t j, int64_t k) {
  HIRE_CHECK_EQ(dim(), 3);
  HIRE_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 &&
             k < shape_[2])
      << "index (" << i << ", " << j << ", " << k << ") in " << ShapeString();
  return data_[static_cast<size_t>((i * shape_[1] + j) * shape_[2] + k)];
}

float Tensor::at(int64_t i, int64_t j, int64_t k) const {
  return const_cast<Tensor*>(this)->at(i, j, k);
}

float& Tensor::at(int64_t i, int64_t j, int64_t k, int64_t l) {
  HIRE_CHECK_EQ(dim(), 4);
  HIRE_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 &&
             k < shape_[2] && l >= 0 && l < shape_[3])
      << "index (" << i << ", " << j << ", " << k << ", " << l << ") in "
      << ShapeString();
  return data_[static_cast<size_t>(
      ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l)];
}

float Tensor::at(int64_t i, int64_t j, int64_t k, int64_t l) const {
  return const_cast<Tensor*>(this)->at(i, j, k, l);
}

Tensor Tensor::Reshape(std::vector<int64_t> new_shape) const {
  int inferred_axis = -1;
  int64_t known_product = 1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      HIRE_CHECK_EQ(inferred_axis, -1) << "multiple -1 dims in reshape";
      inferred_axis = static_cast<int>(i);
    } else {
      HIRE_CHECK_GT(new_shape[i], 0)
          << "bad reshape target " << ShapeToString(new_shape);
      known_product *= new_shape[i];
    }
  }
  if (inferred_axis >= 0) {
    HIRE_CHECK(known_product > 0 && size() % known_product == 0)
        << "cannot infer -1 in reshape of " << ShapeString() << " to "
        << ShapeToString(new_shape);
    new_shape[static_cast<size_t>(inferred_axis)] = size() / known_product;
  }
  HIRE_CHECK_EQ(ShapeNumElements(new_shape), size())
      << "reshape " << ShapeString() << " -> " << ShapeToString(new_shape);
  return Tensor(std::move(new_shape), data_);
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::string Tensor::ShapeString() const { return ShapeToString(shape_); }

std::string Tensor::ToString() const {
  std::ostringstream out;
  out << "Tensor" << ShapeString() << " {";
  const int64_t preview = std::min<int64_t>(size(), 16);
  for (int64_t i = 0; i < preview; ++i) {
    if (i > 0) out << ", ";
    out << data_[static_cast<size_t>(i)];
  }
  if (preview < size()) out << ", ... (" << size() << " total)";
  out << "}";
  return out.str();
}

std::vector<int64_t> Tensor::Strides() const {
  std::vector<int64_t> strides(shape_.size(), 1);
  for (int i = dim() - 2; i >= 0; --i) {
    strides[static_cast<size_t>(i)] =
        strides[static_cast<size_t>(i + 1)] * shape_[static_cast<size_t>(i + 1)];
  }
  return strides;
}

}  // namespace hire
