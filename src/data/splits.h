#ifndef HIRE_DATA_SPLITS_H_
#define HIRE_DATA_SPLITS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "tensor/random.h"

namespace hire {
namespace data {

/// The paper's three cold-start scenarios (Fig. 2).
enum class ColdStartScenario {
  kUserCold,      // new users, existing items
  kItemCold,      // existing users, new items
  kUserItemCold,  // new users AND new items
};

std::string ScenarioName(ColdStartScenario scenario);

/// A cold-start evaluation split. Entities listed as test users/items are
/// *cold*: none of their ratings appear in `train_ratings`, matching the
/// paper's requirement that cold entities and their ratings are unavailable
/// during training.
struct ColdStartSplit {
  ColdStartScenario scenario = ColdStartScenario::kUserCold;

  std::vector<int64_t> train_users;
  std::vector<int64_t> train_items;
  std::vector<int64_t> test_users;  // cold users (UC / U&IC), else empty
  std::vector<int64_t> test_items;  // cold items (IC / U&IC), else empty

  /// Ratings visible at training time.
  std::vector<Rating> train_ratings;
  /// Ratings used for evaluation (involve cold entities per the scenario).
  std::vector<Rating> test_ratings;
};

/// Randomly splits `dataset` into warm/cold entities and partitions the
/// ratings accordingly. `train_fraction` is the share of users (and/or
/// items) kept warm — the paper uses 0.8 for MovieLens-1M and 0.7 for
/// Douban/Bookcrossing.
///
/// - kUserCold: users split; train ratings are those of warm users; test
///   ratings are those of cold users (on any item).
/// - kItemCold: items split symmetrically.
/// - kUserItemCold: both split; train ratings are warm-user x warm-item;
///   test ratings are cold-user x cold-item.
ColdStartSplit MakeColdStartSplit(const Dataset& dataset,
                                  ColdStartScenario scenario,
                                  double train_fraction, Rng* rng);

}  // namespace data
}  // namespace hire

#endif  // HIRE_DATA_SPLITS_H_
