#include "data/csv_loader.h"

#include <cmath>
#include <fstream>
#include <unordered_map>
#include <vector>

#include "utils/check.h"
#include "utils/string_utils.h"

namespace hire {
namespace data {

namespace {

/// One data row plus its 1-based line number in the source file, so every
/// parse error can point at "file:line".
struct CsvRow {
  int64_t line = 0;
  std::vector<std::string> fields;
};

struct CsvTable {
  std::vector<CsvRow> rows;
};

CsvTable ReadCsv(const std::string& path, char delimiter, bool has_header) {
  std::ifstream in(path);
  HIRE_CHECK(in.is_open())
      << "cannot open CSV file '" << path << "' (missing file or bad path)";
  CsvTable table;
  std::string line;
  int64_t line_number = 0;
  bool first = true;
  while (std::getline(in, line)) {
    ++line_number;
    if (first && has_header) {
      first = false;
      continue;
    }
    first = false;
    if (Trim(line).empty()) continue;
    table.rows.push_back(CsvRow{line_number, Split(line, delimiter)});
  }
  HIRE_CHECK(!table.rows.empty())
      << "CSV file '" << path << "' has no data rows"
      << (has_header ? " (only a header or blank lines)" : "");
  return table;
}

/// Maps raw string ids to dense int64 ids in first-seen order.
class IdMap {
 public:
  int64_t Intern(const std::string& raw) {
    auto [it, inserted] = map_.emplace(raw, next_);
    if (inserted) ++next_;
    return it->second;
  }
  int64_t Lookup(const std::string& raw) const {
    auto it = map_.find(raw);
    return it == map_.end() ? -1 : it->second;
  }
  int64_t size() const { return next_; }

 private:
  std::unordered_map<std::string, int64_t> map_;
  int64_t next_ = 0;
};

}  // namespace

Dataset LoadCsvDataset(const CsvDatasetSpec& spec) {
  HIRE_CHECK(!spec.ratings_path.empty()) << "ratings_path is required";
  const CsvTable ratings_csv =
      ReadCsv(spec.ratings_path, spec.delimiter, spec.has_header);

  IdMap user_ids;
  IdMap item_ids;
  struct RawRating {
    int64_t user;
    int64_t item;
    float value;
  };
  std::vector<RawRating> raw_ratings;
  raw_ratings.reserve(ratings_csv.rows.size());
  for (const auto& row : ratings_csv.rows) {
    HIRE_CHECK_GE(row.fields.size(), 3u)
        << "malformed ratings row at " << spec.ratings_path << ":" << row.line
        << " — need user,item,rating";
    const int64_t user = user_ids.Intern(Trim(row.fields[0]));
    const int64_t item = item_ids.Intern(Trim(row.fields[1]));
    float value = 0.0f;
    try {
      value = static_cast<float>(ParseDouble(Trim(row.fields[2])));
    } catch (const CheckError&) {
      HIRE_CHECK(false) << "malformed rating value '" << Trim(row.fields[2])
                        << "' at " << spec.ratings_path << ":" << row.line;
    }
    HIRE_CHECK(std::isfinite(value))
        << "non-finite rating value '" << Trim(row.fields[2]) << "' at "
        << spec.ratings_path << ":" << row.line;
    raw_ratings.push_back(RawRating{user, item, value});
  }

  // Attribute files: build per-column vocabularies.
  auto load_attributes =
      [&](const std::string& path, IdMap* entity_ids, const char* kind)
      -> std::pair<std::vector<AttributeSchema>,
                   std::vector<std::vector<int64_t>>> {
    if (path.empty()) {
      // Identity attribute fallback.
      std::vector<AttributeSchema> schema{{"id", entity_ids->size()}};
      std::vector<std::vector<int64_t>> values(
          static_cast<size_t>(entity_ids->size()));
      for (int64_t e = 0; e < entity_ids->size(); ++e) {
        values[static_cast<size_t>(e)] = {e};
      }
      return {schema, values};
    }

    const CsvTable table = ReadCsv(path, spec.delimiter, spec.has_header);
    const size_t num_columns = table.rows[0].fields.size();
    HIRE_CHECK_GE(num_columns, 2u)
        << kind << " attribute rows need id plus at least one attribute in '"
        << path << "'";

    std::vector<IdMap> vocabularies(num_columns - 1);
    std::vector<std::vector<int64_t>> values(
        static_cast<size_t>(entity_ids->size()),
        std::vector<int64_t>(num_columns - 1, 0));
    std::vector<bool> seen(static_cast<size_t>(entity_ids->size()), false);

    for (const auto& row : table.rows) {
      HIRE_CHECK_EQ(row.fields.size(), num_columns)
          << "ragged " << kind << " attribute row at " << path << ":"
          << row.line;
      const int64_t entity = entity_ids->Lookup(Trim(row.fields[0]));
      if (entity < 0) continue;  // entity has no ratings; skip
      seen[static_cast<size_t>(entity)] = true;
      for (size_t c = 1; c < num_columns; ++c) {
        values[static_cast<size_t>(entity)][c - 1] =
            vocabularies[c - 1].Intern(Trim(row.fields[c]));
      }
    }

    std::vector<AttributeSchema> schema;
    for (size_t c = 0; c + 1 < num_columns; ++c) {
      // Reserve one extra category for entities missing from the file.
      schema.push_back(AttributeSchema{
          kind + std::string("_attr") + std::to_string(c),
          vocabularies[c].size() + 1});
    }
    const int64_t missing_marker = 0;
    for (int64_t e = 0; e < entity_ids->size(); ++e) {
      if (!seen[static_cast<size_t>(e)]) {
        for (size_t c = 0; c + 1 < num_columns; ++c) {
          values[static_cast<size_t>(e)][c] =
              schema[c].num_categories - 1 + missing_marker * 0;
        }
      }
    }
    return {schema, values};
  };

  auto [user_schema, user_values] =
      load_attributes(spec.user_attributes_path, &user_ids, "user");
  auto [item_schema, item_values] =
      load_attributes(spec.item_attributes_path, &item_ids, "item");

  Dataset dataset(spec.name, user_schema, item_schema, user_ids.size(),
                  item_ids.size(), spec.min_rating, spec.max_rating);
  for (int64_t u = 0; u < user_ids.size(); ++u) {
    dataset.SetUserAttributes(u, user_values[static_cast<size_t>(u)]);
  }
  for (int64_t i = 0; i < item_ids.size(); ++i) {
    dataset.SetItemAttributes(i, item_values[static_cast<size_t>(i)]);
  }
  for (const RawRating& rating : raw_ratings) {
    dataset.AddRating(rating.user, rating.item, rating.value);
  }
  return dataset;
}

}  // namespace data
}  // namespace hire
