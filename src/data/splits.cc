#include "data/splits.h"

#include <algorithm>
#include <unordered_set>

#include "utils/check.h"

namespace hire {
namespace data {

std::string ScenarioName(ColdStartScenario scenario) {
  switch (scenario) {
    case ColdStartScenario::kUserCold:
      return "user-cold";
    case ColdStartScenario::kItemCold:
      return "item-cold";
    case ColdStartScenario::kUserItemCold:
      return "user&item-cold";
  }
  return "?";
}

namespace {

// Shuffles [0, count) and splits at train_fraction.
void SplitEntities(int64_t count, double train_fraction, Rng* rng,
                   std::vector<int64_t>* train, std::vector<int64_t>* test) {
  std::vector<int64_t> ids(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) ids[static_cast<size_t>(i)] = i;
  rng->Shuffle(&ids);
  const int64_t train_count = std::clamp<int64_t>(
      static_cast<int64_t>(train_fraction * static_cast<double>(count)), 1,
      count - 1);
  train->assign(ids.begin(), ids.begin() + train_count);
  test->assign(ids.begin() + train_count, ids.end());
  std::sort(train->begin(), train->end());
  std::sort(test->begin(), test->end());
}

std::vector<int64_t> AllEntities(int64_t count) {
  std::vector<int64_t> ids(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) ids[static_cast<size_t>(i)] = i;
  return ids;
}

}  // namespace

ColdStartSplit MakeColdStartSplit(const Dataset& dataset,
                                  ColdStartScenario scenario,
                                  double train_fraction, Rng* rng) {
  HIRE_CHECK(rng != nullptr);
  HIRE_CHECK(train_fraction > 0.0 && train_fraction < 1.0)
      << "train_fraction " << train_fraction;

  ColdStartSplit split;
  split.scenario = scenario;

  const bool cold_users = scenario != ColdStartScenario::kItemCold;
  const bool cold_items = scenario != ColdStartScenario::kUserCold;

  if (cold_users) {
    SplitEntities(dataset.num_users(), train_fraction, rng, &split.train_users,
                  &split.test_users);
  } else {
    split.train_users = AllEntities(dataset.num_users());
  }
  if (cold_items) {
    SplitEntities(dataset.num_items(), train_fraction, rng, &split.train_items,
                  &split.test_items);
  } else {
    split.train_items = AllEntities(dataset.num_items());
  }

  std::unordered_set<int64_t> cold_user_set(split.test_users.begin(),
                                            split.test_users.end());
  std::unordered_set<int64_t> cold_item_set(split.test_items.begin(),
                                            split.test_items.end());

  for (const Rating& rating : dataset.ratings()) {
    const bool user_is_cold = cold_user_set.count(rating.user) > 0;
    const bool item_is_cold = cold_item_set.count(rating.item) > 0;
    switch (scenario) {
      case ColdStartScenario::kUserCold:
        if (user_is_cold) {
          split.test_ratings.push_back(rating);
        } else {
          split.train_ratings.push_back(rating);
        }
        break;
      case ColdStartScenario::kItemCold:
        if (item_is_cold) {
          split.test_ratings.push_back(rating);
        } else {
          split.train_ratings.push_back(rating);
        }
        break;
      case ColdStartScenario::kUserItemCold:
        if (user_is_cold && item_is_cold) {
          split.test_ratings.push_back(rating);
        } else if (!user_is_cold && !item_is_cold) {
          split.train_ratings.push_back(rating);
        }
        // Mixed warm/cold pairs are discarded: they would leak cold entities
        // into training.
        break;
    }
  }

  HIRE_CHECK(!split.train_ratings.empty()) << "empty training split";
  HIRE_CHECK(!split.test_ratings.empty()) << "empty test split";
  return split;
}

}  // namespace data
}  // namespace hire
