#ifndef HIRE_DATA_CSV_LOADER_H_
#define HIRE_DATA_CSV_LOADER_H_

#include <string>

#include "data/dataset.h"

namespace hire {
namespace data {

/// Describes CSV files holding a real dataset (e.g. the original
/// MovieLens-1M/Douban/Bookcrossing dumps converted to CSV).
///
/// ratings file rows:     user_id,item_id,rating
/// attribute file rows:   entity_id,attr_1,attr_2,...   (header optional)
///
/// Ids may be arbitrary strings; they are densely re-mapped. Attribute
/// values are treated as categorical strings and vocabulary-encoded.
struct CsvDatasetSpec {
  std::string name = "csv";
  std::string ratings_path;
  /// Optional; empty => identity attribute per user.
  std::string user_attributes_path;
  /// Optional; empty => identity attribute per item.
  std::string item_attributes_path;
  char delimiter = ',';
  bool has_header = true;
  float min_rating = 1.0f;
  float max_rating = 5.0f;
};

/// Loads a Dataset from CSV files; throws hire::CheckError on malformed
/// input (missing or empty files, bad or ragged rows, non-finite or
/// out-of-range ratings). Row-level errors report the file name and
/// 1-based line number of the offending row.
Dataset LoadCsvDataset(const CsvDatasetSpec& spec);

}  // namespace data
}  // namespace hire

#endif  // HIRE_DATA_CSV_LOADER_H_
