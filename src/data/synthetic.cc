#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "tensor/random.h"
#include "utils/check.h"

namespace hire {
namespace data {

namespace {

// Latent representation of one entity population.
struct LatentPopulation {
  std::vector<std::vector<double>> vectors;   // [count][latent_dim]
  std::vector<int> cluster_of;                // [count]
};

LatentPopulation DrawLatents(int64_t count, int num_clusters, int latent_dim,
                             double spread, Rng* rng) {
  std::vector<std::vector<double>> centres(
      static_cast<size_t>(num_clusters),
      std::vector<double>(static_cast<size_t>(latent_dim)));
  for (auto& centre : centres) {
    for (double& coordinate : centre) coordinate = rng->Normal();
  }

  LatentPopulation population;
  population.vectors.resize(static_cast<size_t>(count));
  population.cluster_of.resize(static_cast<size_t>(count));
  for (int64_t e = 0; e < count; ++e) {
    const int cluster = static_cast<int>(rng->UniformInt(num_clusters));
    population.cluster_of[static_cast<size_t>(e)] = cluster;
    auto& vector = population.vectors[static_cast<size_t>(e)];
    vector.resize(static_cast<size_t>(latent_dim));
    for (int d = 0; d < latent_dim; ++d) {
      vector[static_cast<size_t>(d)] =
          centres[static_cast<size_t>(cluster)][static_cast<size_t>(d)] +
          spread * rng->Normal();
    }
  }
  return population;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) total += a[i] * b[i];
  return total;
}

// Derives categorical attributes from latents via random projections, so
// that attribute values carry preference signal. Schema entries named "id"
// get the entity id instead.
std::vector<std::vector<int64_t>> DeriveAttributes(
    const LatentPopulation& population,
    const std::vector<AttributeSchema>& schema, int latent_dim,
    double attribute_noise, Rng* rng) {
  const size_t count = population.vectors.size();
  std::vector<std::vector<int64_t>> attributes(
      count, std::vector<int64_t>(schema.size(), 0));

  for (size_t a = 0; a < schema.size(); ++a) {
    if (schema[a].name == "id") {
      for (size_t e = 0; e < count; ++e) {
        attributes[e][a] = static_cast<int64_t>(e);
      }
      continue;
    }
    // Fixed random projection per attribute; per-entity noise keeps the
    // attribute informative without making it a sufficient statistic for
    // the latent preference vector.
    std::vector<double> projection(static_cast<size_t>(latent_dim));
    for (double& coordinate : projection) coordinate = rng->Normal();
    const int64_t buckets = schema[a].num_categories;
    for (size_t e = 0; e < count; ++e) {
      const double score = Dot(population.vectors[e], projection) +
                           attribute_noise * rng->Normal();
      const double squashed = 1.0 / (1.0 + std::exp(-0.8 * score));
      attributes[e][a] = std::min<int64_t>(
          buckets - 1, static_cast<int64_t>(squashed * static_cast<double>(
                                                           buckets)));
    }
  }
  return attributes;
}

// Power-law sampling weights over `count` shuffled ranks.
std::vector<double> ZipfWeights(int64_t count, double exponent, Rng* rng) {
  std::vector<double> weights(static_cast<size_t>(count));
  std::vector<int64_t> ranks(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) ranks[static_cast<size_t>(i)] = i;
  rng->Shuffle(&ranks);
  for (int64_t i = 0; i < count; ++i) {
    weights[static_cast<size_t>(ranks[static_cast<size_t>(i)])] =
        1.0 / std::pow(static_cast<double>(i + 1), exponent);
  }
  return weights;
}

// Draws an index proportionally to `weights` given their prefix sums.
int64_t WeightedDraw(const std::vector<double>& prefix, Rng* rng) {
  const double target = rng->Uniform() * prefix.back();
  const auto it = std::upper_bound(prefix.begin(), prefix.end(), target);
  return std::min<int64_t>(static_cast<int64_t>(it - prefix.begin()),
                           static_cast<int64_t>(prefix.size()) - 1);
}

std::vector<double> PrefixSums(const std::vector<double>& weights) {
  std::vector<double> prefix(weights.size());
  double running = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    running += weights[i];
    prefix[i] = running;
  }
  return prefix;
}

}  // namespace

Dataset GenerateSyntheticDataset(const SyntheticConfig& config,
                                 uint64_t seed) {
  HIRE_CHECK_GT(config.num_users, 1);
  HIRE_CHECK_GT(config.num_items, 1);
  HIRE_CHECK_GT(config.num_ratings, 0);
  Rng rng(seed);

  std::vector<AttributeSchema> user_schema = config.user_schema;
  if (user_schema.empty()) {
    user_schema.push_back(AttributeSchema{"id", config.num_users});
  }
  std::vector<AttributeSchema> item_schema = config.item_schema;
  if (item_schema.empty()) {
    item_schema.push_back(AttributeSchema{"id", config.num_items});
  }

  Dataset dataset(config.name, user_schema, item_schema, config.num_users,
                  config.num_items, config.min_rating, config.max_rating);

  const LatentPopulation users =
      DrawLatents(config.num_users, config.num_user_clusters,
                  config.latent_dim, config.cluster_spread, &rng);
  const LatentPopulation items =
      DrawLatents(config.num_items, config.num_item_clusters,
                  config.latent_dim, config.cluster_spread, &rng);

  const auto user_attributes = DeriveAttributes(
      users, user_schema, config.latent_dim, config.attribute_noise, &rng);
  const auto item_attributes = DeriveAttributes(
      items, item_schema, config.latent_dim, config.attribute_noise, &rng);
  for (int64_t u = 0; u < config.num_users; ++u) {
    dataset.SetUserAttributes(u, user_attributes[static_cast<size_t>(u)]);
  }
  for (int64_t i = 0; i < config.num_items; ++i) {
    dataset.SetItemAttributes(i, item_attributes[static_cast<size_t>(i)]);
  }

  // Calibrate the latent score distribution from a random pair sample, so
  // the affine map onto the rating scale is well-conditioned regardless of
  // latent_dim.
  double mean = 0.0;
  double mean_sq = 0.0;
  const int kCalibrationSamples = 2000;
  for (int s = 0; s < kCalibrationSamples; ++s) {
    const int64_t u = rng.UniformInt(config.num_users);
    const int64_t i = rng.UniformInt(config.num_items);
    const double score = Dot(users.vectors[static_cast<size_t>(u)],
                             items.vectors[static_cast<size_t>(i)]);
    mean += score;
    mean_sq += score * score;
  }
  mean /= kCalibrationSamples;
  const double stddev =
      std::sqrt(std::max(mean_sq / kCalibrationSamples - mean * mean, 1e-9));

  const double scale_min = config.min_rating;
  const double scale_max = config.max_rating;
  auto score_to_rating = [&](int64_t u, int64_t i) {
    const double raw = Dot(users.vectors[static_cast<size_t>(u)],
                           items.vectors[static_cast<size_t>(i)]);
    const double standardised = (raw - mean) / stddev;
    const double noisy = standardised + config.rating_noise * rng.Normal();
    // Squash to (0, 1) and stretch over the discrete scale.
    const double unit = 1.0 / (1.0 + std::exp(-1.4 * noisy));
    const double value =
        scale_min + unit * (scale_max - scale_min);
    return static_cast<float>(
        std::clamp(std::round(value), scale_min, scale_max));
  };

  const std::vector<double> user_weights =
      ZipfWeights(config.num_users, config.zipf_exponent, &rng);
  const std::vector<double> item_weights =
      ZipfWeights(config.num_items, config.zipf_exponent, &rng);
  const std::vector<double> user_prefix = PrefixSums(user_weights);
  const std::vector<double> item_prefix = PrefixSums(item_weights);

  std::unordered_set<int64_t> seen_pairs;
  auto pair_key = [&](int64_t u, int64_t i) {
    return u * config.num_items + i;
  };
  auto try_add = [&](int64_t u, int64_t i) {
    if (!seen_pairs.insert(pair_key(u, i)).second) return false;
    dataset.AddRating(u, i, score_to_rating(u, i));
    return true;
  };

  // Phase 1: guarantee a minimum degree for every user and item so that
  // cold-start evaluation always has support ratings to work with.
  for (int64_t u = 0; u < config.num_users; ++u) {
    for (int r = 0; r < config.min_ratings_per_entity; ++r) {
      for (int attempt = 0; attempt < 16; ++attempt) {
        if (try_add(u, WeightedDraw(item_prefix, &rng))) break;
      }
    }
  }
  for (int64_t i = 0; i < config.num_items; ++i) {
    for (int r = 0; r < config.min_ratings_per_entity; ++r) {
      for (int attempt = 0; attempt < 16; ++attempt) {
        if (try_add(WeightedDraw(user_prefix, &rng), i)) break;
      }
    }
  }

  // Phase 2: fill the rating budget with popularity-weighted pairs.
  int64_t guard = config.num_ratings * 20;
  while (static_cast<int64_t>(dataset.ratings().size()) < config.num_ratings &&
         guard-- > 0) {
    try_add(WeightedDraw(user_prefix, &rng), WeightedDraw(item_prefix, &rng));
  }

  // Optional social network with homophily: most edges stay within the
  // latent cluster.
  if (config.generate_social) {
    std::vector<std::vector<int64_t>> by_cluster(
        static_cast<size_t>(config.num_user_clusters));
    for (int64_t u = 0; u < config.num_users; ++u) {
      by_cluster[static_cast<size_t>(users.cluster_of[static_cast<size_t>(u)])]
          .push_back(u);
    }
    std::unordered_set<int64_t> seen_edges;
    auto edge_key = [&](int64_t a, int64_t b) {
      return std::min(a, b) * config.num_users + std::max(a, b);
    };
    const int half_degree = std::max(1, config.avg_friends / 2);
    for (int64_t u = 0; u < config.num_users; ++u) {
      for (int f = 0; f < half_degree; ++f) {
        int64_t friend_id = -1;
        if (rng.Bernoulli(0.7)) {
          const auto& pool = by_cluster[static_cast<size_t>(
              users.cluster_of[static_cast<size_t>(u)])];
          if (pool.size() > 1) {
            friend_id = pool[static_cast<size_t>(
                rng.UniformInt(static_cast<int64_t>(pool.size())))];
          }
        }
        if (friend_id < 0) friend_id = rng.UniformInt(config.num_users);
        if (friend_id == u) continue;
        if (!seen_edges.insert(edge_key(u, friend_id)).second) continue;
        dataset.AddFriendship(u, friend_id);
      }
    }
  }

  return dataset;
}

SyntheticConfig MovieLens1MProfile(double scale) {
  SyntheticConfig config;
  config.name = "movielens-1m-synth";
  config.num_users = std::max<int64_t>(64, static_cast<int64_t>(600 * scale));
  config.num_items = std::max<int64_t>(64, static_cast<int64_t>(500 * scale));
  config.num_ratings =
      std::max<int64_t>(2000, static_cast<int64_t>(24000 * scale));
  config.min_rating = 1.0f;
  config.max_rating = 5.0f;
  config.user_schema = {{"age", 7}, {"occupation", 21}, {"gender", 2},
                        {"zip", 50}};
  config.item_schema = {{"rate", 5}, {"genre", 18}, {"director", 60},
                        {"actor", 100}};
  return config;
}

SyntheticConfig DoubanProfile(double scale) {
  SyntheticConfig config;
  config.name = "douban-synth";
  config.num_users = std::max<int64_t>(64, static_cast<int64_t>(700 * scale));
  config.num_items = std::max<int64_t>(64, static_cast<int64_t>(600 * scale));
  config.num_ratings =
      std::max<int64_t>(2000, static_cast<int64_t>(21000 * scale));
  config.min_rating = 1.0f;
  config.max_rating = 5.0f;
  // No natural attributes: identity attributes, like the paper's treatment.
  config.user_schema = {};
  config.item_schema = {};
  config.generate_social = true;
  config.avg_friends = 10;
  return config;
}

SyntheticConfig BookcrossingProfile(double scale) {
  SyntheticConfig config;
  config.name = "bookcrossing-synth";
  config.num_users = std::max<int64_t>(64, static_cast<int64_t>(650 * scale));
  config.num_items = std::max<int64_t>(64, static_cast<int64_t>(550 * scale));
  config.num_ratings =
      std::max<int64_t>(2000, static_cast<int64_t>(18000 * scale));
  config.min_rating = 1.0f;
  config.max_rating = 10.0f;
  config.user_schema = {{"age", 10}};
  config.item_schema = {{"publication_year", 12}};
  return config;
}

}  // namespace data
}  // namespace hire
