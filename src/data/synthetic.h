#ifndef HIRE_DATA_SYNTHETIC_H_
#define HIRE_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace hire {
namespace data {

/// Parameters of the synthetic world generator.
///
/// The generator draws users and items from latent clusters, derives
/// categorical attributes from the latent vectors (so attributes are
/// predictive of preferences — the property cold-start models exploit),
/// samples observed pairs with power-law popularity, and scores each pair
/// with a noisy latent dot product mapped onto the rating scale.
struct SyntheticConfig {
  std::string name = "synthetic";
  int64_t num_users = 600;
  int64_t num_items = 500;
  /// Target number of observed ratings (a minimum per entity is enforced
  /// first, then pairs are added up to this budget).
  int64_t num_ratings = 20000;
  float min_rating = 1.0f;
  float max_rating = 5.0f;

  int latent_dim = 8;
  int num_user_clusters = 8;
  int num_item_clusters = 8;
  /// Within-cluster latent spread relative to the unit cluster centres.
  double cluster_spread = 0.35;

  /// Attribute columns. Empty schema => a single identity attribute (the
  /// entity's own id), mirroring the paper's treatment of Douban.
  std::vector<AttributeSchema> user_schema;
  std::vector<AttributeSchema> item_schema;

  /// Noise added to the latent projection before quantising it into a
  /// categorical attribute. Attributes stay predictive of preferences but —
  /// like real profile fields — do not determine them, so collaborative
  /// evidence (observed ratings) carries signal attributes cannot.
  double attribute_noise = 0.8;

  /// Gaussian noise added to the latent score before discretisation.
  double rating_noise = 0.4;
  /// Popularity skew; larger => heavier head.
  double zipf_exponent = 0.9;
  /// Minimum ratings seeded per user and per item before the budget fill.
  int min_ratings_per_entity = 3;

  /// Synthesize a user-user friendship graph (Douban). Friends are biased
  /// towards the same latent cluster so social signal correlates with
  /// preference.
  bool generate_social = false;
  int avg_friends = 10;
};

/// Generates a dataset from `config` deterministically under `seed`.
Dataset GenerateSyntheticDataset(const SyntheticConfig& config, uint64_t seed);

/// Profiles mirroring the paper's three datasets (Table II), scaled to run
/// on one CPU core. `scale` multiplies entity and rating counts.
SyntheticConfig MovieLens1MProfile(double scale = 1.0);
SyntheticConfig DoubanProfile(double scale = 1.0);
SyntheticConfig BookcrossingProfile(double scale = 1.0);

}  // namespace data
}  // namespace hire

#endif  // HIRE_DATA_SYNTHETIC_H_
