#include "data/dataset.h"

#include <cmath>
#include <sstream>

#include "utils/check.h"

namespace hire {
namespace data {

Dataset::Dataset(std::string name, std::vector<AttributeSchema> user_schema,
                 std::vector<AttributeSchema> item_schema, int64_t num_users,
                 int64_t num_items, float min_rating, float max_rating,
                 bool continuous_ratings)
    : name_(std::move(name)),
      user_schema_(std::move(user_schema)),
      item_schema_(std::move(item_schema)),
      num_users_(num_users),
      num_items_(num_items),
      min_rating_(min_rating),
      max_rating_(max_rating),
      continuous_ratings_(continuous_ratings) {
  HIRE_CHECK_GT(num_users_, 0);
  HIRE_CHECK_GT(num_items_, 0);
  HIRE_CHECK_LT(min_rating_, max_rating_);
  HIRE_CHECK(!user_schema_.empty()) << "user schema must not be empty";
  HIRE_CHECK(!item_schema_.empty()) << "item schema must not be empty";
  for (const AttributeSchema& attribute : user_schema_) {
    HIRE_CHECK_GT(attribute.num_categories, 0)
        << "attribute '" << attribute.name << "'";
  }
  for (const AttributeSchema& attribute : item_schema_) {
    HIRE_CHECK_GT(attribute.num_categories, 0)
        << "attribute '" << attribute.name << "'";
  }
  user_attributes_.assign(
      static_cast<size_t>(num_users_),
      std::vector<int64_t>(user_schema_.size(), 0));
  item_attributes_.assign(
      static_cast<size_t>(num_items_),
      std::vector<int64_t>(item_schema_.size(), 0));
  friendships_.assign(static_cast<size_t>(num_users_), {});
}

void Dataset::SetUserAttributes(int64_t user, std::vector<int64_t> values) {
  HIRE_CHECK(user >= 0 && user < num_users_) << "user " << user;
  HIRE_CHECK_EQ(values.size(), user_schema_.size());
  for (size_t a = 0; a < values.size(); ++a) {
    HIRE_CHECK(values[a] >= 0 && values[a] < user_schema_[a].num_categories)
        << "attribute '" << user_schema_[a].name << "' value " << values[a];
  }
  user_attributes_[static_cast<size_t>(user)] = std::move(values);
}

void Dataset::SetItemAttributes(int64_t item, std::vector<int64_t> values) {
  HIRE_CHECK(item >= 0 && item < num_items_) << "item " << item;
  HIRE_CHECK_EQ(values.size(), item_schema_.size());
  for (size_t a = 0; a < values.size(); ++a) {
    HIRE_CHECK(values[a] >= 0 && values[a] < item_schema_[a].num_categories)
        << "attribute '" << item_schema_[a].name << "' value " << values[a];
  }
  item_attributes_[static_cast<size_t>(item)] = std::move(values);
}

void Dataset::AddRating(int64_t user, int64_t item, float value) {
  HIRE_CHECK(user >= 0 && user < num_users_) << "user " << user;
  HIRE_CHECK(item >= 0 && item < num_items_) << "item " << item;
  HIRE_CHECK(value >= min_rating_ && value <= max_rating_)
      << "rating " << value << " outside [" << min_rating_ << ", "
      << max_rating_ << "]";
  ratings_.push_back(Rating{user, item, value});
}

void Dataset::AddFriendship(int64_t user_a, int64_t user_b) {
  HIRE_CHECK(user_a >= 0 && user_a < num_users_);
  HIRE_CHECK(user_b >= 0 && user_b < num_users_);
  HIRE_CHECK_NE(user_a, user_b);
  friendships_[static_cast<size_t>(user_a)].push_back(user_b);
  friendships_[static_cast<size_t>(user_b)].push_back(user_a);
  has_social_ = true;
}

const std::vector<int64_t>& Dataset::user_attributes(int64_t user) const {
  HIRE_CHECK(user >= 0 && user < num_users_) << "user " << user;
  return user_attributes_[static_cast<size_t>(user)];
}

const std::vector<int64_t>& Dataset::item_attributes(int64_t item) const {
  HIRE_CHECK(item >= 0 && item < num_items_) << "item " << item;
  return item_attributes_[static_cast<size_t>(item)];
}

const std::vector<int64_t>& Dataset::friends(int64_t user) const {
  HIRE_CHECK(user >= 0 && user < num_users_) << "user " << user;
  return friendships_[static_cast<size_t>(user)];
}

float Dataset::NormalizeRating(float value) const {
  HIRE_CHECK(value >= min_rating_ && value <= max_rating_)
      << "rating " << value;
  return (value - min_rating_) / (max_rating_ - min_rating_);
}

int64_t Dataset::NumRatingLevels() const {
  HIRE_CHECK(!continuous_ratings_)
      << "continuous rating scales have no discrete levels";
  return static_cast<int64_t>(std::lround(max_rating_ - min_rating_)) + 1;
}

int64_t Dataset::RatingToLevel(float value) const {
  const int64_t level = static_cast<int64_t>(std::lround(value - min_rating_));
  HIRE_CHECK(level >= 0 && level < NumRatingLevels())
      << "rating " << value << " outside the discrete scale";
  return level;
}

float Dataset::LevelToRating(int64_t level) const {
  HIRE_CHECK(level >= 0 && level < NumRatingLevels());
  return min_rating_ + static_cast<float>(level);
}

std::string Dataset::Summary() const {
  std::ostringstream out;
  out << name_ << ": " << num_users_ << " users, " << num_items_
      << " items, " << ratings_.size() << " ratings, scale [" << min_rating_
      << ", " << max_rating_ << "], " << user_schema_.size()
      << " user attrs, " << item_schema_.size() << " item attrs"
      << (has_social_ ? ", social network" : "");
  return out.str();
}

}  // namespace data
}  // namespace hire
