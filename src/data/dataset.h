#ifndef HIRE_DATA_DATASET_H_
#define HIRE_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hire {
namespace data {

/// One categorical attribute column (e.g. "age", "genre").
struct AttributeSchema {
  std::string name;
  /// Number of distinct categories; values are ids in [0, num_categories).
  int64_t num_categories = 0;
};

/// One observed rating r_ui.
struct Rating {
  int64_t user = 0;
  int64_t item = 0;
  float value = 0.0f;
};

/// In-memory recommendation dataset: users and items with categorical
/// attribute vectors plus a list of observed ratings. Ratings are integral
/// values in [min_rating, max_rating] (the paper's datasets use 1-5 and
/// 1-10 scales).
///
/// Entities without natural attributes (Douban) use their own id as a single
/// attribute, matching the paper's "one-hot encoding of the ID" fallback.
class Dataset {
 public:
  /// `continuous_ratings` marks the rating scale as real-valued: ratings
  /// may take any value in [min_rating, max_rating] and models encode them
  /// with a linear map of the scalar instead of a one-hot level embedding
  /// (the extension the paper sketches at the end of §IV-B).
  Dataset(std::string name, std::vector<AttributeSchema> user_schema,
          std::vector<AttributeSchema> item_schema, int64_t num_users,
          int64_t num_items, float min_rating, float max_rating,
          bool continuous_ratings = false);

  // -- Construction ---------------------------------------------------------

  /// Sets user `u`'s attribute vector; must match the user schema arity and
  /// category ranges.
  void SetUserAttributes(int64_t user, std::vector<int64_t> values);

  /// Sets item `i`'s attribute vector.
  void SetItemAttributes(int64_t item, std::vector<int64_t> values);

  /// Records an observed rating; the value must lie in the rating range.
  void AddRating(int64_t user, int64_t item, float value);

  /// Declares a (symmetric) social edge between two users. Optional; only
  /// populated for datasets with a friendship network (Douban).
  void AddFriendship(int64_t user_a, int64_t user_b);

  // -- Accessors ------------------------------------------------------------

  const std::string& name() const { return name_; }
  int64_t num_users() const { return num_users_; }
  int64_t num_items() const { return num_items_; }
  float min_rating() const { return min_rating_; }
  float max_rating() const { return max_rating_; }

  const std::vector<AttributeSchema>& user_schema() const {
    return user_schema_;
  }
  const std::vector<AttributeSchema>& item_schema() const {
    return item_schema_;
  }

  const std::vector<int64_t>& user_attributes(int64_t user) const;
  const std::vector<int64_t>& item_attributes(int64_t item) const;

  const std::vector<Rating>& ratings() const { return ratings_; }

  const std::vector<int64_t>& friends(int64_t user) const;
  bool has_social_network() const { return has_social_; }

  /// True when the rating scale is real-valued (see constructor).
  bool continuous_ratings() const { return continuous_ratings_; }

  /// Normalises a rating to [0, 1] within the scale (continuous encoding).
  float NormalizeRating(float value) const;

  /// Number of discrete rating levels (for one-hot rating encoding):
  /// max - min + 1 on an integral scale. Invalid for continuous scales.
  int64_t NumRatingLevels() const;

  /// Maps a rating value to its level index in [0, NumRatingLevels()).
  int64_t RatingToLevel(float value) const;

  /// Inverse of RatingToLevel.
  float LevelToRating(int64_t level) const;

  /// Relevance cut-off used by the ranking metrics: an item is relevant to a
  /// user when the actual rating reaches 80% of the scale maximum (>= 4 on
  /// 1-5, >= 8 on 1-10).
  float RelevanceThreshold() const { return 0.8f * max_rating_; }

  /// Convenience summary string for logs.
  std::string Summary() const;

 private:
  std::string name_;
  std::vector<AttributeSchema> user_schema_;
  std::vector<AttributeSchema> item_schema_;
  int64_t num_users_;
  int64_t num_items_;
  float min_rating_;
  float max_rating_;

  std::vector<std::vector<int64_t>> user_attributes_;
  std::vector<std::vector<int64_t>> item_attributes_;
  std::vector<Rating> ratings_;
  std::vector<std::vector<int64_t>> friendships_;
  bool has_social_ = false;
  bool continuous_ratings_ = false;
};

}  // namespace data
}  // namespace hire

#endif  // HIRE_DATA_DATASET_H_
