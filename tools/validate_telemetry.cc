// validate_telemetry — checks the observability artifacts a hire_cli run
// produces. Used by the `trace_validate` ctest and handy for eyeballing a
// capture by hand.
//
// Usage:
//   validate_telemetry --trace=t.json --expect-spans=train_step,mhsa_forward
//       --metrics=m.jsonl --min-steps=20 --min-serve=0
//
// Checks:
//   --trace        parses as one complete JSON document, declares
//                  "traceEvents", and contains every --expect-spans name
//   --metrics      every line parses as JSON; at least --min-steps records
//                  with "type":"step", each carrying loss / grad_norm /
//                  lr_scale / wall_s; at least --min-serve records with
//                  "type":"serve", each carrying numeric latency_us /
//                  batch_users / cache_hit; at least one "metrics_snapshot"
//                  record
// Exits 0 when every requested check passes, 1 otherwise.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "utils/check.h"
#include "utils/flags.h"
#include "utils/string_utils.h"

namespace {

int g_failures = 0;

void Fail(const std::string& message) {
  std::cerr << "FAIL: " << message << "\n";
  ++g_failures;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HIRE_CHECK(in.is_open()) << "cannot open '" << path << "'";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void CheckTrace(const std::string& path, const std::string& expect_spans) {
  const std::string text = ReadFile(path);
  std::string error;
  if (!hire::obs::JsonValidate(text, &error)) {
    Fail("trace '" + path + "' is not valid JSON: " + error);
    return;
  }
  if (text.find("\"traceEvents\"") == std::string::npos) {
    Fail("trace '" + path + "' has no \"traceEvents\" array");
  }
  for (const std::string& span : hire::Split(expect_spans, ',')) {
    if (span.empty()) continue;
    const std::string needle = "\"name\":\"" + span + "\"";
    if (text.find(needle) == std::string::npos) {
      Fail("trace '" + path + "' has no span named '" + span + "'");
    }
  }
  std::cout << "trace '" << path << "': valid JSON, " << text.size()
            << " bytes\n";
}

void CheckMetrics(const std::string& path, int64_t min_steps,
                  int64_t min_serve) {
  std::ifstream in(path);
  HIRE_CHECK(in.is_open()) << "cannot open '" << path << "'";
  int64_t line_number = 0;
  int64_t step_records = 0;
  int64_t serve_records = 0;
  int64_t snapshot_records = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::string error;
    if (!hire::obs::JsonValidate(line, &error)) {
      Fail("metrics '" + path + "' line " + std::to_string(line_number) +
           " is not valid JSON: " + error);
      continue;
    }
    std::string type;
    if (!hire::obs::FindJsonStringField(line, "type", &type)) {
      Fail("metrics '" + path + "' line " + std::to_string(line_number) +
           " has no \"type\" field");
      continue;
    }
    if (type == "step") {
      ++step_records;
      double value = 0.0;
      for (const char* field : {"step", "loss", "grad_norm", "lr_scale",
                                "wall_s"}) {
        if (!hire::obs::FindJsonNumberField(line, field, &value)) {
          Fail("metrics '" + path + "' line " + std::to_string(line_number) +
               " step record lacks numeric \"" + field + "\"");
        }
      }
    } else if (type == "serve") {
      ++serve_records;
      double value = 0.0;
      for (const char* field : {"user", "items", "latency_us", "batch_users",
                                "cache_hit", "model_version"}) {
        if (!hire::obs::FindJsonNumberField(line, field, &value)) {
          Fail("metrics '" + path + "' line " + std::to_string(line_number) +
               " serve record lacks numeric \"" + field + "\"");
        }
      }
    } else if (type == "metrics_snapshot") {
      ++snapshot_records;
    }
  }
  if (step_records < min_steps) {
    Fail("metrics '" + path + "' holds " + std::to_string(step_records) +
         " step record(s); expected at least " + std::to_string(min_steps));
  }
  if (serve_records < min_serve) {
    Fail("metrics '" + path + "' holds " + std::to_string(serve_records) +
         " serve record(s); expected at least " + std::to_string(min_serve));
  }
  if (snapshot_records == 0) {
    Fail("metrics '" + path + "' has no metrics_snapshot record");
  }
  std::cout << "metrics '" << path << "': " << line_number << " line(s), "
            << step_records << " step record(s), " << serve_records
            << " serve record(s), " << snapshot_records << " snapshot(s)\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Parse skips argv[0] itself (there is no subcommand to strip here).
    const hire::Flags flags = hire::Flags::Parse(argc, argv);
    const std::string trace = flags.GetString("trace", "");
    const std::string metrics = flags.GetString("metrics", "");
    HIRE_CHECK(!trace.empty() || !metrics.empty())
        << "pass --trace=<file> and/or --metrics=<file>";
    if (!trace.empty()) {
      CheckTrace(trace, flags.GetString("expect-spans", ""));
    }
    if (!metrics.empty()) {
      CheckMetrics(metrics, flags.GetInt("min-steps", 1),
                   flags.GetInt("min-serve", 0));
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  if (g_failures > 0) {
    std::cerr << g_failures << " check(s) failed\n";
    return 1;
  }
  std::cout << "all checks passed\n";
  return 0;
}
