// serve_loadgen — load generator for the HIRE rating server.
//
// Modes:
//   bench  (default) Self-contained benchmark: starts an in-process
//          RatingServer on an ephemeral port and drives it over real
//          loopback HTTP through three closed-loop phases —
//            unbatched   batch window 0: one context+forward per request
//            batched     the configured window: requests coalesce into
//                        shared contexts
//            cache_warm  the batched server again with the same users, so
//                        every context plan is an LRU hit
//          then an open-loop (Poisson arrival) sweep: offered load is
//          stepped up geometrically against a 1-shard and an N-shard server
//          and latency is measured from each request's *scheduled* arrival
//          time, so queueing delay past the saturation knee is visible
//          instead of hidden by closed-loop self-throttling. Writes
//          BENCH_serve.json (per-phase throughput + p50/p95/p99, batch-size
//          histogram, cache hit rate, per-step open-loop latencies and
//          per-shard request balance).
//   drive  Closed-loop clients against an already-running server
//          (--port). Exits non-zero if any request fails — the smoke test
//          uses this concurrently with a /reload to prove zero-downtime
//          hot-swap.
//   probe  One request (--method/--path/--body) against --port; prints the
//          response body; exit 0 iff HTTP 200. Lets shell tests speak to
//          the server without curl.
//
// Example:
//   hire_cli train --profile=movielens --scale=0.05 --steps=40 --out=/tmp/m.bin
//   serve_loadgen --mode=bench --profile=movielens --scale=0.05
//       --model=/tmp/m.bin --clients=8 --requests-per-client=40
//       --out=BENCH_serve.json

#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "serve/http_client.h"
#include "serve/server.h"
#include "utils/check.h"
#include "utils/flags.h"
#include "utils/parallel.h"
#include "utils/thread_pool.h"

namespace {

using namespace hire;

constexpr char kUsage[] =
    R"(serve_loadgen --mode=<bench|drive|probe> [flags]

bench:  --profile/--scale/--seed   synthetic dataset (must match the model)
        --model <path>             trained parameters (required)
        --context/--him-blocks/--heads/--head-dim/--embed-dim  model shape
        --clients <int>            concurrent closed-loop clients (8)
        --requests-per-client <int>  requests each client issues (40)
        --batch-window-us <int>    window for the batched phases (2000)
        --max-batch-users <int>    coalescing bound (8)
        --cache-capacity <int>     context-plan LRU entries (1024)
        --out <path>               result JSON (BENCH_serve.json)
        --shards <int>             shard count for the multi-shard open-loop
                                   sweep config (4)
        --open-loop-steps <int>    offered-load steps in the open-loop sweep;
                                   each doubles the previous rate (5; 0
                                   disables the sweep)
        --open-loop-base-rps <int> offered load of the first step (100)
        --open-loop-duration-s <double>  seconds per step (2.0)
        --open-loop-connections <int>    concurrent keep-alive sender
                                   connections per step (32)
        --idle-connections <int>   extra idle keep-alive connections held
                                   open through every open-loop step, to
                                   prove the event loop carries large fd
                                   counts (0)
        --max-connections <int>    server-side open-connection bound for the
                                   bench servers (0 = unbounded)
drive:  --port <int> --clients <int> --requests-per-client <int>
        --max-user <int>           users drawn round-robin from [0, max-user)
        --items-per-request <int>  (4)
        --deadline-ms <int>        send X-Deadline-Ms on every request (0 =
                                   none)
        --allow-status <csv>       extra statuses besides 200 that do not
                                   count as failures (e.g. 503,504)
        --allow-transport-errors   connection resets/timeouts do not count
                                   as failures (chaos drills)
probe:  --port <int> --method <GET|POST> --path </healthz> --body <json>
        --deadline-ms <int>        send X-Deadline-Ms (0 = none)
        --timeout-ms <int>         client socket timeout (30000)

drive prints "DRIVE_STATUS 200=n 503=n ... degraded=n transport_errors=n"
for scripts asserting on the status mix.
)";

struct PhaseResult {
  std::string name;
  double wall_seconds = 0.0;
  int64_t requests = 0;
  int64_t failures = 0;
  std::map<int, int64_t> status_counts;  // HTTP status -> responses
  int64_t degraded = 0;                  // 200s tagged "degraded":true
  int64_t transport_errors = 0;          // no HTTP response at all
  std::vector<double> latencies_us;  // successful requests only
  /// Client-observed latency of every answered request, per HTTP status —
  /// rejections (503/504) have tails too, and hiding them under the
  /// success-only percentiles would make shedding look free.
  std::map<int, std::vector<double>> latencies_by_status_us;
  obs::MetricsRegistry::Snapshot delta;

  double throughput_rps() const {
    return wall_seconds > 0 ? static_cast<double>(requests - failures) /
                                  wall_seconds
                            : 0.0;
  }
  double degraded_share() const {
    const auto it = status_counts.find(200);
    const int64_t ok = it == status_counts.end() ? 0 : it->second;
    return ok > 0 ? static_cast<double>(degraded) / static_cast<double>(ok)
                  : 0.0;
  }
};

/// What DrivePhase tolerates without counting a failure.
struct DriveOptions {
  int64_t deadline_ms = 0;           // X-Deadline-Ms header (0 = none)
  std::set<int> allow_status;        // besides 200 (e.g. {503, 504})
  bool allow_transport_errors = false;
};

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      std::min<double>(static_cast<double>(sorted.size()) - 1,
                       q * static_cast<double>(sorted.size())));
  return sorted[rank];
}

/// Runs `clients` closed-loop HTTP clients against 127.0.0.1:`port`, each
/// issuing `requests_each` POST /predict calls. Users are assigned
/// round-robin from [0, num_users): pass num_users >= clients*requests_each
/// for an all-cold run, smaller to force reuse.
PhaseResult DrivePhase(const std::string& name, int port, int clients,
                       int64_t requests_each, int64_t num_users,
                       int64_t items_per_request, int64_t num_items,
                       const DriveOptions& options = {}) {
  PhaseResult result;
  result.name = name;
  result.requests = static_cast<int64_t>(clients) * requests_each;

  const obs::MetricsRegistry::Snapshot before =
      obs::MetricsRegistry::Global().Take();
  std::mutex merge_mutex;
  std::atomic<int64_t> failures{0};

  std::vector<std::pair<std::string, std::string>> extra_headers;
  if (options.deadline_ms > 0) {
    extra_headers.push_back(
        {"X-Deadline-Ms", std::to_string(options.deadline_ms)});
  }

  const auto wall_start = std::chrono::steady_clock::now();
  {
    ThreadPool pool(clients);
    for (int c = 0; c < clients; ++c) {
      pool.Submit([&, c] {
        serve::HttpClient client(port);
        std::vector<double> latencies;
        latencies.reserve(static_cast<size_t>(requests_each));
        std::map<int, std::vector<double>> by_status;
        std::map<int, int64_t> statuses;
        int64_t degraded = 0;
        int64_t transport_errors = 0;
        for (int64_t i = 0; i < requests_each; ++i) {
          const int64_t user =
              (static_cast<int64_t>(c) * requests_each + i) % num_users;
          std::string body = "{\"user\":" + std::to_string(user) +
                             ",\"items\":[";
          for (int64_t j = 0; j < items_per_request; ++j) {
            if (j > 0) body += ",";
            body += std::to_string((user * 13 + j * 7) % num_items);
          }
          body += "]}";
          const auto start = std::chrono::steady_clock::now();
          const serve::HttpClient::Result response =
              client.Request("POST", "/predict", body, extra_headers);
          const double micros =
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - start)
                  .count();
          if (!response.ok) {
            ++transport_errors;
            if (!options.allow_transport_errors) failures.fetch_add(1);
            continue;
          }
          ++statuses[response.status];
          by_status[response.status].push_back(micros);
          if (response.status == 200) {
            latencies.push_back(micros);
            if (response.body.find("\"degraded\":true") != std::string::npos) {
              ++degraded;
            }
          } else if (options.allow_status.count(response.status) == 0) {
            failures.fetch_add(1);
          }
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        result.latencies_us.insert(result.latencies_us.end(),
                                   latencies.begin(), latencies.end());
        for (auto& [status, samples] : by_status) {
          auto& sink = result.latencies_by_status_us[status];
          sink.insert(sink.end(), samples.begin(), samples.end());
        }
        for (const auto& [status, count] : statuses) {
          result.status_counts[status] += count;
        }
        result.degraded += degraded;
        result.transport_errors += transport_errors;
      });
    }
    pool.Wait();
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  result.failures = failures.load();
  result.delta = obs::MetricsRegistry::Global().Take().Delta(before);
  std::sort(result.latencies_us.begin(), result.latencies_us.end());
  for (auto& [status, samples] : result.latencies_by_status_us) {
    std::sort(samples.begin(), samples.end());
  }
  return result;
}

/// {"count":N,"p50_us":...,"p95_us":...,"p99_us":...} over a sorted sample.
std::string PercentilesJson(const std::vector<double>& sorted) {
  return "{\"count\":" + std::to_string(sorted.size()) +
         ",\"p50_us\":" + obs::JsonNumber(Percentile(sorted, 0.50)) +
         ",\"p95_us\":" + obs::JsonNumber(Percentile(sorted, 0.95)) +
         ",\"p99_us\":" + obs::JsonNumber(Percentile(sorted, 0.99)) + "}";
}

/// Raises RLIMIT_NOFILE toward its hard cap so the connection-scale phases
/// are not cut off by a conservative soft default (often 1024).
void RaiseFdLimit(uint64_t wanted) {
  rlimit limit;
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  if (limit.rlim_cur >= wanted) return;
  rlimit raised = limit;
  raised.rlim_cur = limit.rlim_max == RLIM_INFINITY
                        ? wanted
                        : std::min<rlim_t>(limit.rlim_max, wanted);
  if (::setrlimit(RLIMIT_NOFILE, &raised) == 0 && raised.rlim_cur < wanted) {
    std::cerr << "warning: RLIMIT_NOFILE capped at " << raised.rlim_cur
              << " (< " << wanted << " wanted); scale phases may shrink\n";
  }
}

/// Opens `count` TCP connections to the server and leaves them idle (no
/// bytes sent). They occupy event-loop slots until the server's idle timeout
/// closes them — proof the front-end carries large fd counts while serving.
std::vector<int> OpenIdleConnections(int port, int count) {
  std::vector<int> fds;
  fds.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) break;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      break;
    }
    fds.push_back(fd);
  }
  return fds;
}

void CloseConnections(std::vector<int>* fds) {
  for (int fd : *fds) ::close(fd);
  fds->clear();
}

/// Extracts the "shard" field a /predict response carries (-1 if absent).
int ShardFromBody(const std::string& body) {
  const size_t key = body.find("\"shard\":");
  if (key == std::string::npos) return -1;
  return std::atoi(body.c_str() + key + 8);
}

/// One offered-load step of the open-loop sweep.
struct OpenLoopStep {
  double offered_rps = 0.0;
  int64_t scheduled = 0;       // arrivals in the schedule
  int64_t completed = 0;       // HTTP 200s
  int64_t failures = 0;        // non-200s + transport errors
  double wall_seconds = 0.0;
  std::vector<double> latencies_us;     // from *scheduled* arrival, sorted
  std::map<int, int64_t> shard_counts;  // answering shard -> 200s
  int64_t forwards = 0;       // batch forwards this step (server-side delta)
  int64_t batched_users = 0;  // users co-batched into those forwards
  double achieved_rps() const {
    return wall_seconds > 0 ? static_cast<double>(completed) / wall_seconds
                            : 0.0;
  }
  /// Hottest shard's share of requests relative to a perfectly uniform
  /// split (1.0 = uniform; the acceptance bound is 2.0).
  double balance_max_over_uniform(int num_shards) const {
    if (completed == 0 || num_shards <= 1) return 1.0;
    int64_t hottest = 0;
    for (const auto& [shard, count] : shard_counts) {
      hottest = std::max(hottest, count);
    }
    const double uniform =
        static_cast<double>(completed) / static_cast<double>(num_shards);
    return uniform > 0 ? static_cast<double>(hottest) / uniform : 1.0;
  }
};

/// Open-loop (Poisson arrival) phase: a pre-computed exponential
/// inter-arrival schedule is replayed by `connections` keep-alive senders.
/// Latency is measured from the request's scheduled arrival time, not from
/// when a sender got around to it — past the saturation knee the backlog
/// grows and that queueing delay lands in the percentiles, which is the
/// entire point of open-loop measurement.
OpenLoopStep OpenLoopPhase(int port, double offered_rps, double duration_s,
                           int connections, int64_t num_users,
                           int64_t items_per_request, int64_t num_items,
                           uint64_t seed) {
  using Clock = std::chrono::steady_clock;
  OpenLoopStep step;
  step.offered_rps = offered_rps;

  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> interarrival(offered_rps);
  std::vector<double> arrivals_s;
  double t = 0.0;
  while (t < duration_s) {
    t += interarrival(rng);
    if (t < duration_s) arrivals_s.push_back(t);
  }
  step.scheduled = static_cast<int64_t>(arrivals_s.size());

  std::atomic<int64_t> next{0};
  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> failures{0};
  std::mutex merge_mutex;
  // Small lead-in so every sender thread is parked before the first arrival.
  const Clock::time_point epoch =
      Clock::now() + std::chrono::milliseconds(50);

  std::vector<std::thread> senders;
  senders.reserve(static_cast<size_t>(connections));
  for (int c = 0; c < connections; ++c) {
    senders.emplace_back([&, c] {
      serve::HttpClient client(port);
      std::vector<double> latencies;
      std::map<int, int64_t> shards;
      while (true) {
        const int64_t i = next.fetch_add(1);
        if (i >= step.scheduled) break;
        const Clock::time_point scheduled_at =
            epoch + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(arrivals_s[
                            static_cast<size_t>(i)]));
        std::this_thread::sleep_until(scheduled_at);
        const int64_t user = (i * 7919 + c) % num_users;
        std::string body =
            "{\"user\":" + std::to_string(user) + ",\"items\":[";
        for (int64_t j = 0; j < items_per_request; ++j) {
          if (j > 0) body += ",";
          body += std::to_string((user * 13 + j * 7) % num_items);
        }
        body += "]}";
        const serve::HttpClient::Result response =
            client.Request("POST", "/predict", body);
        const double micros = std::chrono::duration<double, std::micro>(
                                  Clock::now() - scheduled_at)
                                  .count();
        if (response.ok && response.status == 200) {
          completed.fetch_add(1);
          latencies.push_back(micros);
          ++shards[ShardFromBody(response.body)];
        } else {
          failures.fetch_add(1);
        }
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      step.latencies_us.insert(step.latencies_us.end(), latencies.begin(),
                               latencies.end());
      for (const auto& [shard, count] : shards) {
        step.shard_counts[shard] += count;
      }
    });
  }
  for (std::thread& sender : senders) sender.join();
  step.wall_seconds =
      std::chrono::duration<double>(Clock::now() - epoch).count();
  step.completed = completed.load();
  step.failures = failures.load();
  std::sort(step.latencies_us.begin(), step.latencies_us.end());
  return step;
}

std::string OpenLoopStepJson(const OpenLoopStep& step, int num_shards) {
  std::string json = "{";
  json += "\"offered_rps\":" + obs::JsonNumber(step.offered_rps);
  json += ",\"scheduled\":" + std::to_string(step.scheduled);
  json += ",\"completed\":" + std::to_string(step.completed);
  json += ",\"failures\":" + std::to_string(step.failures);
  json += ",\"wall_seconds\":" + obs::JsonNumber(step.wall_seconds);
  json += ",\"achieved_rps\":" + obs::JsonNumber(step.achieved_rps());
  json += ",\"p50_us\":" + obs::JsonNumber(Percentile(step.latencies_us, 0.50));
  json += ",\"p95_us\":" + obs::JsonNumber(Percentile(step.latencies_us, 0.95));
  json += ",\"p99_us\":" + obs::JsonNumber(Percentile(step.latencies_us, 0.99));
  json += ",\"shard_counts\":{";
  bool first = true;
  for (const auto& [shard, count] : step.shard_counts) {
    if (!first) json += ",";
    first = false;
    json += "\"" + std::to_string(shard) + "\":" + std::to_string(count);
  }
  json += "}";
  json += ",\"balance_max_over_uniform\":" +
          obs::JsonNumber(step.balance_max_over_uniform(num_shards));
  // Server-side batching attribution: mean_batch_users is the forward
  // amortization this step actually achieved (throughput ≈ occupancy /
  // forward cost), the first number to check when a sharded config's knee
  // sits left of single-shard.
  json += ",\"forwards\":" + std::to_string(step.forwards);
  json += ",\"mean_batch_users\":" +
          obs::JsonNumber(step.forwards > 0
                              ? static_cast<double>(step.batched_users) /
                                    static_cast<double>(step.forwards)
                              : 0.0);
  json += "}";
  return json;
}

std::string PhaseJson(const PhaseResult& phase) {
  uint64_t hits = 0;
  uint64_t misses = 0;
  auto counter = [&phase](const std::string& name) -> uint64_t {
    const auto it = phase.delta.counters.find(name);
    return it == phase.delta.counters.end() ? 0 : it->second;
  };
  hits = counter("serve.context_cache.hits");
  misses = counter("serve.context_cache.misses");
  const uint64_t batches = counter("serve.batches");
  const uint64_t batched_users = counter("serve.batched_users");

  std::string json = "{";
  json += "\"requests\":" + std::to_string(phase.requests);
  json += ",\"failures\":" + std::to_string(phase.failures);
  json += ",\"wall_seconds\":" + obs::JsonNumber(phase.wall_seconds);
  json += ",\"throughput_rps\":" + obs::JsonNumber(phase.throughput_rps());
  json += ",\"p50_us\":" + obs::JsonNumber(Percentile(phase.latencies_us, 0.50));
  json += ",\"p95_us\":" + obs::JsonNumber(Percentile(phase.latencies_us, 0.95));
  json += ",\"p99_us\":" + obs::JsonNumber(Percentile(phase.latencies_us, 0.99));
  json += ",\"forwards\":" + std::to_string(batches);
  json += ",\"mean_batch_users\":" +
          obs::JsonNumber(batches > 0 ? static_cast<double>(batched_users) /
                                            static_cast<double>(batches)
                                      : 0.0);
  const auto hist = phase.delta.histograms.find("serve.batch_users");
  if (hist != phase.delta.histograms.end()) {
    json += ",\"batch_users_histogram\":" + hist->second.ToJson();
  }
  json += ",\"cache_hits\":" + std::to_string(hits);
  json += ",\"cache_misses\":" + std::to_string(misses);
  json += ",\"cache_hit_rate\":" +
          obs::JsonNumber(hits + misses > 0
                              ? static_cast<double>(hits) /
                                    static_cast<double>(hits + misses)
                              : 0.0);
  json += ",\"status_counts\":{";
  bool first = true;
  for (const auto& [status, count] : phase.status_counts) {
    if (!first) json += ",";
    first = false;
    json += "\"" + std::to_string(status) + "\":" + std::to_string(count);
  }
  json += "}";
  {
    std::vector<double> all;
    for (const auto& [status, samples] : phase.latencies_by_status_us) {
      all.insert(all.end(), samples.begin(), samples.end());
    }
    std::sort(all.begin(), all.end());
    json += ",\"client_latency\":" + PercentilesJson(all);
    json += ",\"client_latency_by_status\":{";
    first = true;
    for (const auto& [status, samples] : phase.latencies_by_status_us) {
      if (!first) json += ",";
      first = false;
      json += "\"" + std::to_string(status) +
              "\":" + PercentilesJson(samples);
    }
    json += "}";
  }
  json += ",\"transport_errors\":" + std::to_string(phase.transport_errors);
  json += ",\"degraded\":" + std::to_string(phase.degraded);
  json += ",\"degraded_share\":" + obs::JsonNumber(phase.degraded_share());
  json += "}";
  return json;
}

/// Machine-parseable status mix, e.g.
/// "DRIVE_STATUS 200=80 503=12 504=8 degraded=5 transport_errors=0".
void PrintDriveStatus(const PhaseResult& result) {
  std::cout << "DRIVE_STATUS";
  for (const auto& [status, count] : result.status_counts) {
    std::cout << " " << status << "=" << count;
  }
  std::cout << " degraded=" << result.degraded
            << " transport_errors=" << result.transport_errors << "\n";
}

data::Dataset LoadSyntheticDataset(const Flags& flags) {
  const std::string profile = flags.GetString("profile", "movielens");
  const double scale = flags.GetDouble("scale", 1.0);
  data::SyntheticConfig config;
  if (profile == "movielens") {
    config = data::MovieLens1MProfile(scale);
  } else if (profile == "bookcrossing") {
    config = data::BookcrossingProfile(scale);
  } else if (profile == "douban") {
    config = data::DoubanProfile(scale);
  } else {
    HIRE_CHECK(false) << "unknown profile '" << profile << "'";
  }
  return data::GenerateSyntheticDataset(
      config, static_cast<uint64_t>(flags.GetInt("seed", 7)));
}

core::HireConfig ModelConfig(const Flags& flags) {
  core::HireConfig config;
  config.num_him_blocks = static_cast<int>(flags.GetInt("him-blocks", 3));
  config.num_heads = flags.GetInt("heads", 4);
  config.head_dim = flags.GetInt("head-dim", 8);
  config.attr_embed_dim = flags.GetInt("embed-dim", 8);
  return config;
}

serve::ServeConfig BuildServeConfig(const Flags& flags, int64_t window_us,
                                    const std::string& model_path,
                                    int num_shards = 1) {
  serve::ServeConfig config;
  config.port = 0;
  config.num_shards = num_shards;
  config.http_threads = static_cast<int>(flags.GetInt("http-threads", 4));
  config.max_connections =
      static_cast<int>(flags.GetInt("max-connections", 0));
  config.cache_capacity =
      static_cast<size_t>(flags.GetInt("cache-capacity", 1024));
  config.model_path = model_path;
  config.batcher.batch_window_us = window_us;
  config.batcher.max_batch_users = flags.GetInt("max-batch-users", 8);
  config.batcher.context_users = flags.GetInt("context", 16);
  config.batcher.context_items = config.batcher.context_users;
  config.batcher.visible_fraction = flags.GetDouble("visible-fraction", 0.1);
  config.batcher.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  config.batcher.queue_capacity =
      static_cast<size_t>(flags.GetInt("queue-capacity", 1024));
  return config;
}

int RunBench(const Flags& flags) {
  const std::string model_path = flags.GetString("model", "");
  HIRE_CHECK(!model_path.empty()) << "--model is required for bench";
  const int clients = static_cast<int>(flags.GetInt("clients", 8));
  const int64_t requests_each = flags.GetInt("requests-per-client", 40);
  const int64_t items_per_request = flags.GetInt("items-per-request", 4);
  const int64_t window_us = flags.GetInt("batch-window-us", 2000);
  const std::string out = flags.GetString("out", "BENCH_serve.json");

  const data::Dataset dataset = LoadSyntheticDataset(flags);
  std::cout << "dataset: " << dataset.Summary() << "\n";
  // Distinct users per phase so the unbatched/batched phases run an all-cold
  // cache; the warm phase then replays the same users.
  const int64_t num_users =
      std::min<int64_t>(dataset.num_users(),
                        static_cast<int64_t>(clients) * requests_each);
  HIRE_CHECK_GT(num_users, 0);

  auto run_phase = [&](const std::string& name, int64_t phase_window) {
    graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                                dataset.ratings());
    serve::RatingServer server(
        &dataset, ModelConfig(flags), std::move(graph),
        BuildServeConfig(flags, phase_window, model_path));
    server.Start();
    PhaseResult cold =
        DrivePhase(name, server.port(), clients, requests_each, num_users,
                   items_per_request, dataset.num_items());
    PhaseResult warm =
        DrivePhase(name + "_warm", server.port(), clients, requests_each,
                   num_users, items_per_request, dataset.num_items());
    server.Stop();
    return std::make_pair(std::move(cold), std::move(warm));
  };

  std::cout << "phase unbatched (window 0)...\n";
  const auto [unbatched, unbatched_warm] = run_phase("unbatched", 0);
  std::cout << "phase batched (window " << window_us << "us)...\n";
  const auto [batched, cache_warm] = run_phase("batched", window_us);

  const double speedup =
      unbatched.throughput_rps() > 0
          ? batched.throughput_rps() / unbatched.throughput_rps()
          : 0.0;

  // Open-loop (Poisson) sweep: the same offered-load ladder against a
  // 1-shard and an N-shard server, so the saturation knee and the
  // shards-vs-throughput relation are both visible in one artifact.
  const int open_loop_steps =
      static_cast<int>(flags.GetInt("open-loop-steps", 5));
  const int sweep_shards = static_cast<int>(flags.GetInt("shards", 4));
  const double base_rps =
      static_cast<double>(flags.GetInt("open-loop-base-rps", 100));
  const double step_duration_s = flags.GetDouble("open-loop-duration-s", 2.0);
  const int connections =
      static_cast<int>(flags.GetInt("open-loop-connections", 32));
  const int idle_connections =
      static_cast<int>(flags.GetInt("idle-connections", 0));
  RaiseFdLimit(static_cast<uint64_t>(connections + idle_connections) + 512);

  struct SweepConfig {
    int shards = 1;
    std::vector<OpenLoopStep> steps;
    int64_t idle_held = 0;
  };
  std::vector<SweepConfig> sweeps;
  if (open_loop_steps > 0) {
    std::vector<int> shard_configs{1};
    if (sweep_shards > 1) shard_configs.push_back(sweep_shards);
    for (int shards : shard_configs) {
      SweepConfig sweep;
      sweep.shards = shards;
      graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                                  dataset.ratings());
      serve::RatingServer server(
          &dataset, ModelConfig(flags), std::move(graph),
          BuildServeConfig(flags, window_us, model_path, shards));
      server.Start();
      std::vector<int> idle_fds =
          OpenIdleConnections(server.port(), idle_connections);
      sweep.idle_held = static_cast<int64_t>(idle_fds.size());
      for (int s = 0; s < open_loop_steps; ++s) {
        const double offered = base_rps * static_cast<double>(1 << s);
        std::cout << "open-loop shards=" << shards << " offered=" << offered
                  << " rps..." << std::flush;
        const obs::MetricsRegistry::Snapshot before =
            obs::MetricsRegistry::Global().Take();
        OpenLoopStep step = OpenLoopPhase(
            server.port(), offered, step_duration_s, connections, num_users,
            items_per_request, dataset.num_items(),
            static_cast<uint64_t>(flags.GetInt("seed", 7)) + 1000 +
                static_cast<uint64_t>(s));
        const obs::MetricsRegistry::Snapshot delta =
            obs::MetricsRegistry::Global().Take().Delta(before);
        const auto step_counter = [&delta](const std::string& name) {
          const auto it = delta.counters.find(name);
          return it == delta.counters.end() ? int64_t{0}
                                            : static_cast<int64_t>(it->second);
        };
        step.forwards = step_counter("serve.batches");
        step.batched_users = step_counter("serve.batched_users");
        std::cout << " achieved=" << static_cast<int64_t>(step.achieved_rps())
                  << " p99=" << Percentile(step.latencies_us, 0.99) << "us\n";
        sweep.steps.push_back(std::move(step));
      }
      CloseConnections(&idle_fds);
      server.Stop();
      sweeps.push_back(std::move(sweep));
    }
  }

  std::string json = "{\"benchmark\":\"serve\"";
  json += ",\"profile\":" + obs::JsonString(flags.GetString("profile",
                                                            "movielens"));
  json += ",\"clients\":" + std::to_string(clients);
  json += ",\"requests_per_client\":" + std::to_string(requests_each);
  json += ",\"batch_window_us\":" + std::to_string(window_us);
  json += ",\"max_batch_users\":" +
          std::to_string(flags.GetInt("max-batch-users", 8));
  json += ",\"context\":" + std::to_string(flags.GetInt("context", 16));
  json += ",\"phases\":{";
  json += "\"unbatched\":" + PhaseJson(unbatched);
  json += ",\"unbatched_warm\":" + PhaseJson(unbatched_warm);
  json += ",\"batched\":" + PhaseJson(batched);
  json += ",\"cache_warm\":" + PhaseJson(cache_warm);
  json += "}";
  json += ",\"speedup_batched_vs_unbatched\":" + obs::JsonNumber(speedup);
  if (!sweeps.empty()) {
    json += ",\"open_loop\":{";
    json += "\"duration_s\":" + obs::JsonNumber(step_duration_s);
    json += ",\"connections\":" + std::to_string(connections);
    json += ",\"idle_connections\":" + std::to_string(idle_connections);
    json += ",\"configs\":{";
    for (size_t i = 0; i < sweeps.size(); ++i) {
      if (i > 0) json += ",";
      json += "\"shards_" + std::to_string(sweeps[i].shards) + "\":{";
      json += "\"shards\":" + std::to_string(sweeps[i].shards);
      json += ",\"idle_connections_held\":" +
              std::to_string(sweeps[i].idle_held);
      json += ",\"steps\":[";
      for (size_t s = 0; s < sweeps[i].steps.size(); ++s) {
        if (s > 0) json += ",";
        json += OpenLoopStepJson(sweeps[i].steps[s], sweeps[i].shards);
      }
      json += "]}";
    }
    json += "}";
    // Per-step achieved-throughput ratio of the multi-shard config over the
    // single-shard one at equal offered load; the minimum is the headline
    // "sharding does not cost throughput" number (> 1 needs multiple cores).
    if (sweeps.size() == 2) {
      double min_ratio = -1.0;
      const size_t steps =
          std::min(sweeps[0].steps.size(), sweeps[1].steps.size());
      for (size_t s = 0; s < steps; ++s) {
        const double single = sweeps[0].steps[s].achieved_rps();
        const double multi = sweeps[1].steps[s].achieved_rps();
        if (single <= 0) continue;
        const double ratio = multi / single;
        if (min_ratio < 0 || ratio < min_ratio) min_ratio = ratio;
      }
      json += ",\"multi_over_single_min_ratio\":" +
              obs::JsonNumber(min_ratio < 0 ? 0.0 : min_ratio);
    }
    json += "}";
  }
  json += "}";

  std::string json_error;
  HIRE_CHECK(obs::JsonValidate(json, &json_error)) << json_error;
  std::ofstream file(out);
  HIRE_CHECK(file.is_open()) << "cannot write " << out;
  file << json << "\n";

  std::cout << "unbatched: "
            << static_cast<int64_t>(unbatched.throughput_rps()) << " rps, "
            << "batched: " << static_cast<int64_t>(batched.throughput_rps())
            << " rps (speedup " << speedup << "x), cache-warm p50 "
            << Percentile(cache_warm.latencies_us, 0.5) << "us vs cold p50 "
            << Percentile(batched.latencies_us, 0.5) << "us\n";
  std::cout << "wrote " << out << "\n";

  if (unbatched.failures + batched.failures + cache_warm.failures +
          unbatched_warm.failures >
      0) {
    std::cerr << "error: failed requests during bench\n";
    return 1;
  }
  return 0;
}

int RunDrive(const Flags& flags) {
  const int port = static_cast<int>(flags.GetInt("port", 0));
  HIRE_CHECK_GT(port, 0) << "--port is required for drive";
  const int clients = static_cast<int>(flags.GetInt("clients", 4));
  const int64_t requests_each = flags.GetInt("requests-per-client", 25);
  const int64_t max_user = flags.GetInt("max-user", 64);
  const int64_t items_per_request = flags.GetInt("items-per-request", 4);
  // Item ids are drawn from [0, max-item); keep it inside the server's item
  // universe or requests will (correctly) fail with out-of-range errors.
  const int64_t max_item = flags.GetInt("max-item", 64);

  DriveOptions options;
  options.deadline_ms = flags.GetInt("deadline-ms", 0);
  options.allow_transport_errors =
      flags.GetBool("allow-transport-errors", false);
  const std::string allow = flags.GetString("allow-status", "");
  size_t pos = 0;
  while (pos < allow.size()) {
    size_t comma = allow.find(',', pos);
    if (comma == std::string::npos) comma = allow.size();
    const std::string token = allow.substr(pos, comma - pos);
    if (!token.empty()) options.allow_status.insert(std::atoi(token.c_str()));
    pos = comma + 1;
  }

  const PhaseResult result =
      DrivePhase("drive", port, clients, requests_each, max_user,
                 items_per_request, max_item, options);
  std::cout << "drive: " << (result.requests - result.failures) << "/"
            << result.requests << " ok, "
            << static_cast<int64_t>(result.throughput_rps()) << " rps, p50 "
            << Percentile(result.latencies_us, 0.5) << "us\n";
  PrintDriveStatus(result);
  if (result.failures > 0) {
    std::cerr << "error: " << result.failures << " failed request(s)\n";
    return 1;
  }
  return 0;
}

int RunProbe(const Flags& flags) {
  const int port = static_cast<int>(flags.GetInt("port", 0));
  HIRE_CHECK_GT(port, 0) << "--port is required for probe";
  serve::HttpClient client(port, "127.0.0.1",
                           static_cast<int>(flags.GetInt("timeout-ms",
                                                         30000)));
  std::vector<std::pair<std::string, std::string>> extra_headers;
  const int64_t deadline_ms = flags.GetInt("deadline-ms", 0);
  if (deadline_ms > 0) {
    extra_headers.push_back({"X-Deadline-Ms", std::to_string(deadline_ms)});
  }
  const serve::HttpClient::Result result =
      client.Request(flags.GetString("method", "GET"),
                     flags.GetString("path", "/healthz"),
                     flags.GetString("body", ""), extra_headers);
  if (!result.ok) {
    std::cerr << "error: " << result.error << "\n";
    return 1;
  }
  // Scripts grep the status (and Retry-After when present) to assert on
  // non-200 outcomes without parsing headers themselves.
  std::cout << "PROBE_STATUS " << result.status;
  const auto retry_after = result.headers.find("retry-after");
  if (retry_after != result.headers.end()) {
    std::cout << " retry_after=" << retry_after->second;
  }
  std::cout << "\n" << result.body << "\n";
  return result.status == 200 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Parse skips argv[0] itself (there is no subcommand to strip here).
    const Flags flags = Flags::Parse(argc, argv);
    InitGlobalThreadsFromFlags(flags);
    const std::string mode = flags.GetString("mode", "bench");
    if (mode == "bench") return RunBench(flags);
    if (mode == "drive") return RunDrive(flags);
    if (mode == "probe") return RunProbe(flags);
    std::cerr << "unknown --mode '" << mode << "'\n" << kUsage;
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
