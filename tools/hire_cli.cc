// hire_cli — command-line front end for the HIRE library.
//
// Subcommands:
//   train     Train a HIRE model on a CSV dataset (or a synthetic profile)
//             and save the parameters.
//   evaluate  Run the cold-start evaluation protocol on a trained model.
//   generate  Emit a synthetic dataset as CSV files for inspection.
//   serve     Run the online rating server (batched inference, context
//             cache, hot-swappable model).
//
// Examples:
//   hire_cli train --profile=movielens --steps=300 --out=/tmp/model.bin
//   hire_cli train --ratings=r.csv --user-attrs=u.csv --item-attrs=i.csv
//       --out=/tmp/model.bin
//   hire_cli evaluate --profile=movielens --model=/tmp/model.bin
//       --scenario=user-cold
//   hire_cli generate --profile=douban --out-dir=/tmp/douban_csv
//   hire_cli serve --profile=movielens --model=/tmp/model.bin --port=8080

#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <string>

#include "core/evaluation.h"
#include "core/hire_model.h"
#include "core/trainer.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "utils/logging.h"
#include "data/csv_loader.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "graph/samplers.h"
#include "nn/serialize.h"
#include "serve/server.h"
#include "utils/check.h"
#include "utils/flags.h"
#include "utils/string_utils.h"
#include "utils/table_printer.h"
#include "utils/parallel.h"

namespace {

using namespace hire;

constexpr char kUsage[] = R"(hire_cli <train|evaluate|generate|serve> [flags]

common flags:
  --profile <movielens|bookcrossing|douban>  synthetic dataset profile
  --scale <double>                           profile size multiplier (1.0)
  --ratings/--user-attrs/--item-attrs <csv>  load a CSV dataset instead
  --seed <int>                               global seed (7)
  --threads <int>      tensor kernel threads (0 = HIRE_NUM_THREADS env,
                       then hardware concurrency)
  --metrics-out <path> write JSONL telemetry (per-step records, events,
                       final metrics snapshot); appends when resuming
  --trace-out <path>   record scoped spans and write Chrome trace-event
                       JSON (open in Perfetto / chrome://tracing)
  --log-level <debug|info|warn|error>  log threshold (also HIRE_LOG_LEVEL)
  --log-json           emit log lines as JSON objects

train:
  --steps <int>        training steps (300)
  --context <int>      context users = items (16)
  --him-blocks <int>   number of HIM blocks (3)
  --heads <int>        attention heads (4)
  --head-dim <int>     per-head width (8)
  --embed-dim <int>    per-attribute embedding width f (8)
  --out <path>         where to save the trained parameters (required)
  --checkpoint-dir <dir>    directory for training snapshots (off by default)
  --checkpoint-every <int>  snapshot every N steps (50; needs --checkpoint-dir)
  --checkpoint-keep <int>   retain the newest K snapshots (3)
  --resume             continue from the newest valid snapshot in
                       --checkpoint-dir; resumed runs are bitwise identical
                       to uninterrupted ones
  --max-bad-steps <int>     consecutive non-finite steps tolerated before
                            rollback + learning-rate backoff (3; 0 disables)
  --max-rollbacks <int>     rollbacks tolerated before aborting the run
                            (8; 0 = unlimited); the backoff compounds
                            across rollbacks
  --telemetry-every <int>   JSONL step record every N steps (1; needs
                            --metrics-out)

evaluate:
  --model <path>       trained parameters from `train` (required)
  --scenario <user-cold|item-cold|user&item-cold>   (user-cold)
  --eval-users <int>   ranked lists to score (30)

generate:
  --out-dir <dir>      directory for ratings.csv/users.csv/items.csv

serve:
  --model <path>       trained parameters to publish; POST /reload hot-swaps
                       to a newer file with zero downtime. Omitted = boot
                       degraded (bias-table predictions) until a /reload
  --port <int>         HTTP listen port on 127.0.0.1 (0 = ephemeral; the
                       bound port is printed as "SERVE_LISTENING port=N")
  --shards <int>       engine shards behind this server; each owns its own
                       hot-swappable model snapshot, context cache, and
                       micro-batcher, and /predict routes by user-id
                       consistent hashing (1)
  --http-threads <int>      handler threads for the HTTP event loop (4)
  --max-connections <int>   open-connection bound; accepts past it get an
                            immediate 503 + Retry-After instead of growing
                            the fd table (0 = unbounded)
  --batch-window-us <int>   micro-batching window; requests arriving within
                            it share one model forward (2000; 0 = one
                            context per request)
  --max-batch-users <int>   distinct users coalesced per forward (8)
  --context <int>      context users = items, must match training (16)
  --visible-fraction <double>  observed-rating density in served contexts
                            (0.1)
  --cache-capacity <int>    context-plan LRU entries (1024)
  --queue-capacity <int>    request queue bound; overflow returns 503 (256)
  --request-deadline-ms <int>  default per-request deadline; expired
                            requests return 504 (0 = no deadline). Clients
                            override per request with X-Deadline-Ms
  --max-inflight <int>      admitted-but-unresolved cap; beyond it requests
                            are shed with 503 + Retry-After (0 = 2x queue
                            capacity)
  --breaker-threshold <int> consecutive batch failures before the circuit
                            breaker serves fallback predictions (3; 0 = off)
  --breaker-cooldown-ms <int>  open-breaker wait before a trial batch (1000)
  --idle-timeout-ms <int>   close keep-alive connections idle this long
                            (5000)
  --header-timeout-ms <int> total budget to receive one request's head+body;
                            breach returns 408 (slow-loris defense) (2000)
  --trace-sample-every <int>  emit request-correlated spans (req#<id>/queue,
                            .../forward, ...) for every Nth request when
                            --trace-out is set (0 = never)
  --slow-request-ms <int>   log one structured warning line with the full
                            per-stage breakdown for requests slower than
                            this (0 = off)
  --stats-tick-ms <int>     rolling-window latency percentile gauge refresh
                            period (1000; 0 = off)

  endpoints: POST /predict {"user":u,"items":[i,...]}   rating predictions
                  (response carries "shard", the engine shard that answered)
             GET  /healthz                              liveness + versions
                  (fleet-min "model_version" plus per-shard
                  "shard_versions":[...])
             GET  /metrics                              metrics registry JSON
                  (?format=prometheus or /metrics/prometheus for text
                  exposition; merged serve.* totals plus per-shard
                  serve.shard.<i>.routed / .outcome.* / .model_version)
             POST /reload {"model":path}?               rolling hot-swap, one
                  shard at a time; 500 + "failed_shards" when any shard
                  rejects the snapshot (the rest still swap)
             POST /shutdown                             graceful stop
)";

std::atomic<bool> g_interrupted{false};

void HandleSignal(int) { g_interrupted.store(true); }

data::Dataset LoadDataset(const Flags& flags) {
  const std::string ratings = flags.GetString("ratings", "");
  if (!ratings.empty()) {
    data::CsvDatasetSpec spec;
    spec.name = "csv";
    spec.ratings_path = ratings;
    spec.user_attributes_path = flags.GetString("user-attrs", "");
    spec.item_attributes_path = flags.GetString("item-attrs", "");
    spec.min_rating = static_cast<float>(flags.GetDouble("min-rating", 1.0));
    spec.max_rating = static_cast<float>(flags.GetDouble("max-rating", 5.0));
    return data::LoadCsvDataset(spec);
  }

  const std::string profile = flags.GetString("profile", "movielens");
  const double scale = flags.GetDouble("scale", 1.0);
  data::SyntheticConfig config;
  if (profile == "movielens") {
    config = data::MovieLens1MProfile(scale);
  } else if (profile == "bookcrossing") {
    config = data::BookcrossingProfile(scale);
  } else if (profile == "douban") {
    config = data::DoubanProfile(scale);
  } else {
    HIRE_CHECK(false) << "unknown profile '" << profile << "'";
  }
  return data::GenerateSyntheticDataset(
      config, static_cast<uint64_t>(flags.GetInt("seed", 7)));
}

core::HireConfig ModelConfig(const Flags& flags) {
  core::HireConfig config;
  config.num_him_blocks = static_cast<int>(flags.GetInt("him-blocks", 3));
  config.num_heads = flags.GetInt("heads", 4);
  config.head_dim = flags.GetInt("head-dim", 8);
  config.attr_embed_dim = flags.GetInt("embed-dim", 8);
  return config;
}

int Train(const Flags& flags) {
  const std::string out = flags.GetString("out", "");
  HIRE_CHECK(!out.empty()) << "--out is required for train";
  const data::Dataset dataset = LoadDataset(flags);
  std::cout << "dataset: " << dataset.Summary() << "\n";

  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  core::HireModel model(&dataset, ModelConfig(flags),
                        static_cast<uint64_t>(flags.GetInt("seed", 7)));
  std::cout << "model: " << model.NumParameters() << " parameters\n";

  graph::NeighborhoodSampler sampler;
  core::TrainerConfig trainer;
  trainer.num_steps = flags.GetInt("steps", 300);
  trainer.context_users = flags.GetInt("context", 16);
  trainer.context_items = trainer.context_users;
  trainer.batch_size = flags.GetInt("batch", 2);
  trainer.log_every = flags.GetInt("log-every", 100);
  trainer.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  trainer.checkpoint_dir = flags.GetString("checkpoint-dir", "");
  trainer.checkpoint_every =
      trainer.checkpoint_dir.empty() ? 0 : flags.GetInt("checkpoint-every", 50);
  trainer.checkpoint_keep =
      static_cast<int>(flags.GetInt("checkpoint-keep", 3));
  trainer.resume = flags.GetBool("resume", false);
  trainer.max_bad_steps = static_cast<int>(flags.GetInt("max-bad-steps", 3));
  trainer.max_rollbacks = flags.GetInt("max-rollbacks", 8);
  trainer.telemetry_every = flags.GetInt("telemetry-every", 1);
  const core::TrainStats stats =
      core::TrainHire(&model, graph, sampler, trainer);
  if (stats.start_step > 0) {
    std::cout << "resumed from step " << stats.start_step << "\n";
  }
  if (stats.skipped_steps > 0 || stats.rollbacks > 0) {
    std::cout << "divergence guard: skipped " << stats.skipped_steps
              << " step(s), " << stats.rollbacks << " rollback(s)\n";
  }
  if (stats.step_losses.empty()) {
    std::cout << "trained: no steps executed (already complete)\n";
  } else {
    std::cout << "trained: loss " << FormatDouble(stats.step_losses.front(), 4)
              << " -> " << FormatDouble(stats.final_loss, 4) << " in "
              << FormatDouble(stats.train_seconds, 1) << "s\n";
  }

  nn::SaveParameters(model, out);
  std::cout << "saved parameters to " << out << "\n";
  return 0;
}

int Evaluate(const Flags& flags) {
  const std::string model_path = flags.GetString("model", "");
  HIRE_CHECK(!model_path.empty()) << "--model is required for evaluate";
  const data::Dataset dataset = LoadDataset(flags);
  std::cout << "dataset: " << dataset.Summary() << "\n";

  core::HireModel model(&dataset, ModelConfig(flags), 0);
  nn::LoadParameters(&model, model_path);

  const std::string scenario_name =
      flags.GetString("scenario", "user-cold");
  data::ColdStartScenario scenario = data::ColdStartScenario::kUserCold;
  if (scenario_name == "item-cold") {
    scenario = data::ColdStartScenario::kItemCold;
  } else if (scenario_name == "user&item-cold") {
    scenario = data::ColdStartScenario::kUserItemCold;
  } else {
    HIRE_CHECK(scenario_name == "user-cold")
        << "unknown scenario '" << scenario_name << "'";
  }

  Rng split_rng(static_cast<uint64_t>(flags.GetInt("seed", 7)) + 1);
  const data::ColdStartSplit split = data::MakeColdStartSplit(
      dataset, scenario, flags.GetDouble("train-fraction", 0.8), &split_rng);

  graph::NeighborhoodSampler sampler;
  const int64_t context = flags.GetInt("context", 16);
  core::HirePredictor predictor(&model, &sampler, context, context,
                                static_cast<uint64_t>(flags.GetInt("seed", 7)) +
                                    2);
  core::EvalConfig eval;
  eval.max_eval_users = flags.GetInt("eval-users", 30);
  const core::EvalResult result =
      core::EvaluateColdStart(&predictor, dataset, split, eval);

  TablePrinter table({"k", "Precision", "NDCG", "MAP"});
  for (const auto& [k, m] : result.by_k) {
    table.AddRow({std::to_string(k), FormatDouble(m.precision, 4),
                  FormatDouble(m.ndcg, 4), FormatDouble(m.map, 4)});
  }
  std::cout << "scenario: " << scenario_name << " (" << result.num_lists
            << " ranked lists, " << FormatDouble(result.predict_seconds, 2)
            << "s prediction time)\n";
  table.Print(std::cout);
  return 0;
}

int Generate(const Flags& flags) {
  const std::string out_dir = flags.GetString("out-dir", "");
  HIRE_CHECK(!out_dir.empty()) << "--out-dir is required for generate";
  const data::Dataset dataset = LoadDataset(flags);
  std::cout << "generated: " << dataset.Summary() << "\n";

  std::ofstream ratings(out_dir + "/ratings.csv");
  HIRE_CHECK(ratings.is_open()) << "cannot write to " << out_dir;
  ratings << "user,item,rating\n";
  for (const data::Rating& rating : dataset.ratings()) {
    ratings << rating.user << "," << rating.item << "," << rating.value
            << "\n";
  }

  std::ofstream users(out_dir + "/users.csv");
  users << "user";
  for (const auto& attribute : dataset.user_schema()) {
    users << "," << attribute.name;
  }
  users << "\n";
  for (int64_t u = 0; u < dataset.num_users(); ++u) {
    users << u;
    for (int64_t value : dataset.user_attributes(u)) users << "," << value;
    users << "\n";
  }

  std::ofstream items(out_dir + "/items.csv");
  items << "item";
  for (const auto& attribute : dataset.item_schema()) {
    items << "," << attribute.name;
  }
  items << "\n";
  for (int64_t i = 0; i < dataset.num_items(); ++i) {
    items << i;
    for (int64_t value : dataset.item_attributes(i)) items << "," << value;
    items << "\n";
  }
  std::cout << "wrote ratings.csv, users.csv, items.csv to " << out_dir
            << "\n";
  return 0;
}

int Serve(const Flags& flags) {
  const std::string model_path = flags.GetString("model", "");
  const data::Dataset dataset = LoadDataset(flags);
  std::cout << "dataset: " << dataset.Summary() << "\n";

  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());

  serve::ServeConfig config;
  config.port = static_cast<int>(flags.GetInt("port", 0));
  config.num_shards = static_cast<int>(flags.GetInt("shards", 1));
  config.http_threads = static_cast<int>(flags.GetInt("http-threads", 4));
  config.max_connections =
      static_cast<int>(flags.GetInt("max-connections", 0));
  config.cache_capacity =
      static_cast<size_t>(flags.GetInt("cache-capacity", 1024));
  config.model_path = model_path;
  config.batcher.batch_window_us = flags.GetInt("batch-window-us", 2000);
  config.batcher.max_batch_users = flags.GetInt("max-batch-users", 8);
  config.batcher.context_users = flags.GetInt("context", 16);
  config.batcher.context_items = config.batcher.context_users;
  config.batcher.visible_fraction = flags.GetDouble("visible-fraction", 0.1);
  config.batcher.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  config.batcher.queue_capacity =
      static_cast<size_t>(flags.GetInt("queue-capacity", 256));
  config.batcher.request_deadline_ms = flags.GetInt("request-deadline-ms", 0);
  config.batcher.max_inflight = flags.GetInt("max-inflight", 0);
  config.batcher.breaker_threshold = flags.GetInt("breaker-threshold", 3);
  config.batcher.breaker_cooldown_ms =
      flags.GetInt("breaker-cooldown-ms", 1000);
  config.batcher.trace_sample_every = flags.GetInt("trace-sample-every", 0);
  config.batcher.slow_request_ms = flags.GetInt("slow-request-ms", 0);
  config.stats_tick_ms = flags.GetInt("stats-tick-ms", 1000);
  config.idle_timeout_ms =
      static_cast<int>(flags.GetInt("idle-timeout-ms", 5000));
  config.header_timeout_ms =
      static_cast<int>(flags.GetInt("header-timeout-ms", 2000));

  serve::RatingServer server(&dataset, ModelConfig(flags), std::move(graph),
                             config);
  server.Start();
  // Machine-parseable line for scripts driving an ephemeral-port server.
  std::cout << "SERVE_LISTENING port=" << server.port() << "\n" << std::flush;

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!server.WaitForShutdown(/*timeout_ms=*/200)) {
    if (g_interrupted.load()) break;
  }
  std::cout << "shutting down\n";
  server.Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << kUsage;
    return 2;
  }
  const std::string command = argv[1];
  try {
    const hire::Flags flags = hire::Flags::Parse(argc - 1, argv + 1);
    hire::InitGlobalThreadsFromFlags(flags);

    const std::string log_level = flags.GetString("log-level", "");
    if (!log_level.empty()) {
      hire::LogLevel level;
      HIRE_CHECK(hire::ParseLogLevel(log_level, &level))
          << "unrecognised --log-level '" << log_level << "'";
      hire::SetLogLevel(level);
    }
    if (flags.GetBool("log-json", false)) {
      hire::SetLogFormat(hire::LogFormat::kJson);
    }

    const std::string metrics_out = flags.GetString("metrics-out", "");
    const std::string trace_out = flags.GetString("trace-out", "");
    if (!metrics_out.empty()) {
      // A resumed run extends the original stream rather than replacing it.
      hire::obs::TelemetrySink::Global().Open(metrics_out,
                                       flags.GetBool("resume", false));
    }
    if (!trace_out.empty()) hire::obs::Tracer::Start();

    int exit_code = 2;
    if (command == "train") {
      exit_code = Train(flags);
    } else if (command == "evaluate") {
      exit_code = Evaluate(flags);
    } else if (command == "generate") {
      exit_code = Generate(flags);
    } else if (command == "serve") {
      exit_code = Serve(flags);
    } else {
      std::cerr << "unknown command '" << command << "'\n" << kUsage;
    }

    if (!trace_out.empty()) {
      hire::obs::Tracer::Stop();
      hire::obs::Tracer::WriteChromeTrace(trace_out);
      std::cout << "wrote " << hire::obs::Tracer::TotalSpans() << " trace span(s) to "
                << trace_out;
      if (hire::obs::Tracer::DroppedSpans() > 0) {
        std::cout << " (" << hire::obs::Tracer::DroppedSpans() << " dropped)";
      }
      std::cout << "\n";
    }
    if (!metrics_out.empty()) {
      hire::obs::TelemetrySink& sink = hire::obs::TelemetrySink::Global();
      sink.WriteMetricsSnapshot(hire::obs::MetricsRegistry::Global().Take());
      sink.Close();
      std::cout << "wrote telemetry to " << metrics_out << "\n";
    }
    return exit_code;
  } catch (const hire::CheckError& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  } catch (const std::exception& error) {
    // bad_alloc, filesystem errors, ... — fail with a message and a non-zero
    // exit code instead of std::terminate.
    std::cerr << "fatal: " << error.what() << "\n";
    return 1;
  }
}
