#!/usr/bin/env bash
# Observability drill for hire_cli: train a tiny model with tracing and
# telemetry enabled, then validate the artifacts — the trace must be one
# valid Chrome trace-event JSON document containing the span names the step
# loop is instrumented with, and the telemetry JSONL must carry one step
# record per step plus a final metrics snapshot.
#
# Usage: run_trace_test.sh <path-to-hire_cli> <path-to-validate_telemetry>
# Registered as the `trace_validate` ctest; also runnable by hand.
set -u

CLI="${1:?usage: run_trace_test.sh <hire_cli> <validate_telemetry>}"
VALIDATOR="${2:?usage: run_trace_test.sh <hire_cli> <validate_telemetry>}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/hire_trace_test.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

STEPS=20
# Checkpointing is on so the checkpoint_write span and telemetry event appear.
# Threading spans (parallel_for / parallel_worker) are NOT in the expected
# list: the cost model plans against effective cores, so a 1-core CI box
# legitimately runs this tiny model fully inline.
"$CLI" train --profile=movielens --scale=0.02 --steps="$STEPS" --context=6 \
    --him-blocks=2 --heads=2 --head-dim=4 --embed-dim=4 \
    --seed=7 --threads=2 --log-every=0 \
    --checkpoint-dir="$WORK/ckpt" --checkpoint-every=10 \
    --trace-out="$WORK/trace.json" --metrics-out="$WORK/metrics.jsonl" \
    --out="$WORK/model.bin" || fail "traced training run"

[ -s "$WORK/trace.json" ] || fail "trace file missing or empty"
[ -s "$WORK/metrics.jsonl" ] || fail "metrics file missing or empty"

"$VALIDATOR" \
    --trace="$WORK/trace.json" \
    --expect-spans=train_step,forward,backward,mhsa_forward,mhsa_backward,him_block_0_forward,optimizer_step,context_sampling,checkpoint_write \
    --metrics="$WORK/metrics.jsonl" \
    --min-steps="$STEPS" || fail "artifact validation"

echo "PASS: trace and telemetry artifacts validate"
