#!/usr/bin/env bash
# Observability drill for the serving tier: boot `hire_cli serve` with
# request-correlated tracing and slow-request logging enabled, drive real
# socket traffic, and then check that
#   - /metrics (JSON) carries the snapshot timestamp, uptime, and per-stage
#     latency histograms partitioned by outcome,
#   - /metrics?format=prometheus and /metrics/prometheus both render the
#     0.0.4 text exposition with cumulative buckets,
#   - serve_monitor scrapes the server, passes a satisfiable SLO (exit 0)
#     and flags an unsatisfiable one (exit 1), and
#   - the Chrome trace written at exit contains request-correlated
#     req#<id>/<stage> spans.
#
# Usage: run_serve_obs_test.sh <hire_cli> <serve_loadgen> <serve_monitor> <validate_telemetry>
# Registered as the `serve_obs` ctest; also runnable by hand.
set -u

CLI="${1:?usage: run_serve_obs_test.sh <hire_cli> <serve_loadgen> <serve_monitor> <validate_telemetry>}"
LOADGEN="${2:?usage: run_serve_obs_test.sh <hire_cli> <serve_loadgen> <serve_monitor> <validate_telemetry>}"
MONITOR="${3:?usage: run_serve_obs_test.sh <hire_cli> <serve_loadgen> <serve_monitor> <validate_telemetry>}"
VALIDATOR="${4:?usage: run_serve_obs_test.sh <hire_cli> <serve_loadgen> <serve_monitor> <validate_telemetry>}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/hire_serve_obs.XXXXXX")"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

SHAPE=(--profile=movielens --scale=0.05 --him-blocks=2 --heads=2 --head-dim=4
       --embed-dim=4 --seed=7 --threads=2)

"$CLI" train "${SHAPE[@]}" --steps=30 --context=6 --log-every=0 \
    --out="$WORK/model.bin" >/dev/null || fail "training model"

# Sample every request into the tracer and tick the percentile window fast so
# a short drill publishes rolling gauges.
"$CLI" serve "${SHAPE[@]}" --model="$WORK/model.bin" --port=0 \
    --context=8 --batch-window-us=2000 --max-batch-users=4 \
    --trace-out="$WORK/serve_trace.json" --trace-sample-every=1 \
    --slow-request-ms=2000 --stats-tick-ms=100 \
    >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^SERVE_LISTENING port=\([0-9]*\)$/\1/p' "$WORK/serve.log")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/serve.log" >&2; fail "server exited before listening"; }
  sleep 0.1
done
[ -n "$PORT" ] || fail "server never printed SERVE_LISTENING"

"$LOADGEN" --mode=probe --port="$PORT" --path=/healthz >/dev/null \
    || fail "/healthz probe"

# Drive traffic in the background while serve_monitor scrapes the live
# server, so its windows observe moving counters.
"$LOADGEN" --mode=drive --port="$PORT" --clients=4 --requests-per-client=100 \
    --max-user=30 --max-item=25 --items-per-request=3 \
    >"$WORK/drive.log" 2>&1 &
DRIVE_PID=$!

"$MONITOR" --port="$PORT" --scrapes=3 --interval-ms=250 \
    --slo="p99<60s,failed<=50%" >"$WORK/monitor_pass.log" 2>&1
MONITOR_STATUS=$?
[ "$MONITOR_STATUS" -eq 0 ] \
    || { cat "$WORK/monitor_pass.log" >&2; fail "serve_monitor rejected a satisfiable SLO (exit $MONITOR_STATUS)"; }
grep -q 'SLO_PASS' "$WORK/monitor_pass.log" \
    || { cat "$WORK/monitor_pass.log" >&2; fail "serve_monitor pass run printed no SLO_PASS line"; }

wait "$DRIVE_PID" || { cat "$WORK/drive.log" >&2; fail "drive traffic had failed requests"; }

# An impossible throughput floor must flag a violation and exit non-zero.
"$MONITOR" --port="$PORT" --scrapes=2 --interval-ms=200 \
    --slo="qps>1000000" >"$WORK/monitor_fail.log" 2>&1
MONITOR_STATUS=$?
[ "$MONITOR_STATUS" -eq 1 ] \
    || { cat "$WORK/monitor_fail.log" >&2; fail "serve_monitor did not flag an impossible SLO (exit $MONITOR_STATUS)"; }
grep -q 'SLO_FAIL' "$WORK/monitor_fail.log" \
    || { cat "$WORK/monitor_fail.log" >&2; fail "serve_monitor fail run printed no SLO_FAIL line"; }

# JSON exposition: snapshot header plus the outcome-partitioned stage
# histograms (eagerly registered, so even never-hit outcomes appear).
METRICS="$("$LOADGEN" --mode=probe --port="$PORT" --path=/metrics)" \
    || fail "/metrics probe"
echo "$METRICS" | grep -q '"ts_unix_ms":' || fail "/metrics JSON lacks ts_unix_ms"
echo "$METRICS" | grep -q '"uptime_seconds":' || fail "/metrics JSON lacks uptime_seconds"
for name in 'serve.stage.forward_us.served' 'serve.stage.queue_us.shed' \
            'serve.stage.admission_us.expired' 'serve.request_latency_us'; do
  echo "$METRICS" | grep -q "\"$name\"" \
      || fail "/metrics JSON lacks histogram '$name'"
done
FWD_COUNT="$(echo "$METRICS" \
    | grep -o '"serve.stage.forward_us.served":{"count":[0-9]*' | grep -o '[0-9]*$')"
[ -n "$FWD_COUNT" ] && [ "$FWD_COUNT" -ge 400 ] \
    || fail "serve.stage.forward_us.served count did not cover the drive traffic (got '${FWD_COUNT:-absent}')"

# Prometheus exposition via both the query parameter and the path alias.
for path in '/metrics?format=prometheus' '/metrics/prometheus'; do
  PROM="$("$LOADGEN" --mode=probe --port="$PORT" --path="$path")" \
      || fail "$path probe"
  echo "$PROM" | grep -q '# TYPE serve_request_latency_us histogram' \
      || fail "$path lacks the request-latency histogram TYPE line"
  echo "$PROM" | grep -q 'serve_stage_forward_us_served_bucket{le="+Inf"}' \
      || fail "$path lacks the cumulative +Inf bucket for forward/served"
  echo "$PROM" | grep -q 'serve_stage_forward_us_served_count' \
      || fail "$path lacks forward/served _count"
  echo "$PROM" | grep -q 'serve_uptime_seconds' \
      || fail "$path lacks serve_uptime_seconds"
  echo "$PROM" | grep -q 'serve_model_version 1' \
      || fail "$path lacks serve_model_version"
done

# The rolling stats tick has had many 100 ms windows with traffic by now.
echo "$METRICS" | grep -q '"serve.latency_p99_us":' \
    || fail "/metrics JSON lacks the rolling p99 gauge"

"$LOADGEN" --mode=probe --port="$PORT" --method=POST --path=/shutdown \
    >/dev/null || fail "/shutdown probe"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  kill "$SERVER_PID"
  fail "server did not exit after /shutdown"
fi
wait "$SERVER_PID" || { cat "$WORK/serve.log" >&2; fail "server exited non-zero"; }
SERVER_PID=""

# The trace written at exit must be valid Chrome-trace JSON and carry
# request-correlated spans for the sampled requests.
"$VALIDATOR" --trace="$WORK/serve_trace.json" \
    || fail "serve trace validation"
grep -q '"name":"req#[0-9]*/total"' "$WORK/serve_trace.json" \
    || fail "trace has no req#<id>/total spans"
grep -q '"name":"req#[0-9]*/forward"' "$WORK/serve_trace.json" \
    || fail "trace has no req#<id>/forward spans"
grep -q '"name":"req#[0-9]*/queue"' "$WORK/serve_trace.json" \
    || fail "trace has no req#<id>/queue spans"

echo "PASS: stage histograms, both metric expositions, serve_monitor SLO gating, and request-correlated tracing all check out"
