#!/usr/bin/env bash
# Sanitizer pass over the suites that exercise raw sockets, threads, and
# manual buffer handling — including the tape-free inference path (arena
# allocator + fused kernels in core_test/serve_test): configure a separate
# build tree with
# -DHIRE_SANITIZE=address,undefined, build the serve + utils test binaries,
# and run them with strict sanitizer options (abort on the first report).
#
# Usage: run_sanitize.sh [source_dir] [build_dir]
#   source_dir  repo root          (default: the directory above this script)
#   build_dir   sanitizer tree     (default: <source_dir>/build-sanitize)
#
# Wired as the optional `sanitize` CMake target: `cmake --build build
# --target sanitize`. Not part of the default ctest run — a sanitizer
# rebuild roughly doubles build time.
set -u

SOURCE_DIR="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
BUILD_DIR="${2:-$SOURCE_DIR/build-sanitize}"
SANITIZERS="${HIRE_SANITIZERS:-address,undefined}"
TESTS=(utils_test core_test serve_test shard_test)

fail() { echo "FAIL: $*" >&2; exit 1; }

echo "configuring $BUILD_DIR with -DHIRE_SANITIZE=$SANITIZERS"
cmake -B "$BUILD_DIR" -S "$SOURCE_DIR" \
    -DHIRE_SANITIZE="$SANITIZERS" \
    -DHIRE_BUILD_BENCHMARKS=OFF -DHIRE_BUILD_EXAMPLES=OFF \
    >/dev/null || fail "cmake configure"

cmake --build "$BUILD_DIR" -j --target "${TESTS[@]}" || fail "build"

# halt_on_error makes UBSan reports fatal (they only log by default), so a
# green exit really means zero findings from either sanitizer.
export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

for test in "${TESTS[@]}"; do
  echo "running $test under $SANITIZERS"
  "$BUILD_DIR/tests/$test" || fail "$test reported sanitizer findings"
done

# The chaos drill drives the whole serving tier — event-loop front-end,
# shard router, rolling reloads, fault injection — through real sockets, so
# a sanitized pass covers the code paths unit tests cannot reach.
cmake --build "$BUILD_DIR" -j --target hire_cli serve_loadgen \
    || fail "build (serve drill binaries)"
echo "running serve_chaos drill under $SANITIZERS"
bash "$SOURCE_DIR/tools/run_serve_chaos.sh" \
    "$BUILD_DIR/tools/hire_cli" "$BUILD_DIR/tools/serve_loadgen" \
    || fail "serve_chaos reported sanitizer findings"

echo "PASS: ${TESTS[*]} + serve_chaos clean under $SANITIZERS"
