// serve_monitor — live scraper / SLO gate for the HIRE rating server.
//
// Polls GET /metrics (JSON) on an interval, differences consecutive scrapes,
// and prints one table row per window: QPS, p50/p95/p99 request latency
// (from the serve.request_latency_us histogram delta), the outcome mix,
// mean batch occupancy, and context-cache hit rate. Window durations come
// from the server's own ts_unix_ms snapshot stamp, so a slow scrape does not
// skew the rates.
//
// With --slo the aggregate across the whole run is checked against a
// comma-separated list of `metric op value` expressions and the process
// exits non-zero on any violation, which makes it usable as a release gate:
//
//   serve_monitor --port=8080 --scrapes=10 --interval-ms=1000
//       --slo="p99<50ms,degraded<1%,qps>100"
//
// Metrics: p50/p95/p99 (request latency; value suffix us|ms|s, default us),
//          qps, degraded/shed/expired/failed (outcome shares; suffix % or a
//          plain fraction), cache_hit (share), balance (hottest shard's
//          routed traffic over a uniform spread; 1.0 = even).
// Ops: < <= > >=
//
// Against a multi-shard server each row gains a second line with the
// per-shard routed split for that window and its max/uniform ratio.
//
// Prints "SLO_PASS <expr> actual=<v>" / "SLO_FAIL <expr> actual=<v>" lines
// for scripts, and exits 0 (all pass), 1 (violation), 2 (usage/scrape
// error).

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/window.h"
#include "serve/http_client.h"
#include "utils/flags.h"

namespace {

using namespace hire;

constexpr char kUsage[] =
    R"(serve_monitor --port=<int> [flags]

  --port <int>         server port on 127.0.0.1 (required)
  --interval-ms <int>  time between scrapes (1000)
  --scrapes <int>      windows to observe after the baseline scrape (5)
  --slo <exprs>        comma-separated "metric op value" checks evaluated on
                       the aggregate window, e.g. "p99<50ms,degraded<1%"
  --timeout-ms <int>   per-scrape HTTP timeout (5000)
)";

/// One parsed /metrics scrape (JSON view).
struct Scrape {
  bool ok = false;
  double ts_ms = 0.0;      // server snapshot stamp
  double uptime_s = 0.0;
  double outcomes[5] = {0, 0, 0, 0, 0};  // served/degraded/shed/expired/failed
  double batches = 0.0;
  double batched_users = 0.0;
  double cache_hits = 0.0;
  double cache_misses = 0.0;
  std::vector<double> shard_routed;  // serve.shard.<i>.routed, per shard
  obs::HistogramSnapshot latency;

  double total_requests() const {
    double total = 0.0;
    for (double o : outcomes) total += o;
    return total;
  }
};

const char* const kOutcomeKeys[5] = {
    "serve.outcome.served", "serve.outcome.degraded", "serve.outcome.shed",
    "serve.outcome.expired", "serve.outcome.failed"};

/// Textually parses one named histogram out of a /metrics JSON body:
/// "name":{"count":N,"sum":S,"buckets":[[bound,count],...],"overflow":M}
bool ParseHistogram(const std::string& body, const std::string& name,
                    obs::HistogramSnapshot* out) {
  const size_t key = body.find("\"" + name + "\":{");
  if (key == std::string::npos) return false;
  const size_t open = body.find('{', key);
  const size_t close = body.find('}', open);
  if (close == std::string::npos) return false;
  const std::string object = body.substr(open, close - open + 1);

  double count = 0.0;
  double sum = 0.0;
  double overflow = 0.0;
  if (!obs::FindJsonNumberField(object, "count", &count) ||
      !obs::FindJsonNumberField(object, "sum", &sum) ||
      !obs::FindJsonNumberField(object, "overflow", &overflow)) {
    return false;
  }
  out->count = static_cast<uint64_t>(count);
  out->sum = sum;
  out->upper_bounds.clear();
  out->bucket_counts.clear();

  size_t pos = object.find("\"buckets\":[");
  if (pos == std::string::npos) return false;
  pos += 11;
  while (pos < object.size() && object[pos] != ']') {
    if (object[pos] != '[') { ++pos; continue; }
    char* end = nullptr;
    const double bound = std::strtod(object.c_str() + pos + 1, &end);
    if (end == nullptr || *end != ',') return false;
    const double bucket = std::strtod(end + 1, &end);
    if (end == nullptr || *end != ']') return false;
    out->upper_bounds.push_back(bound);
    out->bucket_counts.push_back(static_cast<uint64_t>(bucket));
    pos = static_cast<size_t>(end - object.c_str()) + 1;
  }
  // The registry's snapshot layout keeps overflow as a trailing bucket.
  out->bucket_counts.push_back(static_cast<uint64_t>(overflow));
  return true;
}

Scrape ParseScrape(const std::string& body) {
  Scrape scrape;
  obs::FindJsonNumberField(body, "ts_unix_ms", &scrape.ts_ms);
  obs::FindJsonNumberField(body, "uptime_seconds", &scrape.uptime_s);
  for (int i = 0; i < 5; ++i) {
    obs::FindJsonNumberField(body, kOutcomeKeys[i], &scrape.outcomes[i]);
  }
  obs::FindJsonNumberField(body, "serve.batches", &scrape.batches);
  obs::FindJsonNumberField(body, "serve.batched_users",
                           &scrape.batched_users);
  obs::FindJsonNumberField(body, "serve.context_cache.hits",
                           &scrape.cache_hits);
  obs::FindJsonNumberField(body, "serve.context_cache.misses",
                           &scrape.cache_misses);
  double num_shards = 0.0;
  obs::FindJsonNumberField(body, "serve.shards", &num_shards);
  for (int shard = 0; shard < static_cast<int>(num_shards); ++shard) {
    double routed = 0.0;
    obs::FindJsonNumberField(
        body, "serve.shard." + std::to_string(shard) + ".routed", &routed);
    scrape.shard_routed.push_back(routed);
  }
  scrape.ok =
      ParseHistogram(body, "serve.request_latency_us", &scrape.latency);
  return scrape;
}

/// Derived statistics of the window between two scrapes.
struct WindowStats {
  double seconds = 0.0;
  double requests = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double outcome_delta[5] = {0, 0, 0, 0, 0};
  double batch_occupancy = 0.0;  // mean users per forward
  double cache_hit_rate = 0.0;
  std::vector<double> shard_routed_delta;  // per-shard routed, this window

  double share(int outcome) const {
    return requests > 0 ? outcome_delta[outcome] / requests : 0.0;
  }

  /// Hottest shard's share of routed traffic relative to a perfectly even
  /// spread (1.0 = uniform; 2.0 = one shard saw twice its fair share).
  double shard_balance() const {
    if (shard_routed_delta.size() < 2) return 1.0;
    double total = 0.0;
    double hottest = 0.0;
    for (double routed : shard_routed_delta) {
      total += routed;
      hottest = std::max(hottest, routed);
    }
    if (total <= 0.0) return 1.0;
    return hottest / (total / static_cast<double>(shard_routed_delta.size()));
  }
};

WindowStats Diff(const Scrape& before, const Scrape& after) {
  WindowStats stats;
  stats.seconds = (after.ts_ms - before.ts_ms) / 1000.0;
  for (int i = 0; i < 5; ++i) {
    stats.outcome_delta[i] = after.outcomes[i] - before.outcomes[i];
    stats.requests += stats.outcome_delta[i];
  }
  stats.qps = stats.seconds > 0 ? stats.requests / stats.seconds : 0.0;
  if (before.latency.upper_bounds == after.latency.upper_bounds) {
    const obs::HistogramSnapshot delta = after.latency.Delta(before.latency);
    if (delta.count > 0) {
      stats.p50_us = obs::HistogramQuantile(delta, 0.50);
      stats.p95_us = obs::HistogramQuantile(delta, 0.95);
      stats.p99_us = obs::HistogramQuantile(delta, 0.99);
    }
  }
  const double batches = after.batches - before.batches;
  const double batched_users = after.batched_users - before.batched_users;
  stats.batch_occupancy = batches > 0 ? batched_users / batches : 0.0;
  const double hits = after.cache_hits - before.cache_hits;
  const double misses = after.cache_misses - before.cache_misses;
  stats.cache_hit_rate = hits + misses > 0 ? hits / (hits + misses) : 0.0;
  if (before.shard_routed.size() == after.shard_routed.size()) {
    for (size_t i = 0; i < after.shard_routed.size(); ++i) {
      stats.shard_routed_delta.push_back(after.shard_routed[i] -
                                         before.shard_routed[i]);
    }
  }
  return stats;
}

/// One extra line under a row for multi-shard servers: the per-shard routed
/// split this window and how far the hottest shard sits above uniform.
void PrintShardBalance(const WindowStats& stats) {
  if (stats.shard_routed_delta.size() < 2) return;
  std::printf("  shards routed=[");
  for (size_t i = 0; i < stats.shard_routed_delta.size(); ++i) {
    std::printf("%s%.0f", i == 0 ? "" : ",", stats.shard_routed_delta[i]);
  }
  std::printf("] max/uniform=%.2f\n", stats.shard_balance());
  std::fflush(stdout);
}

void PrintHeader() {
  std::printf("%-8s %8s %9s %9s %9s %7s %7s %5s %5s %5s %6s %6s\n", "window",
              "qps", "p50_ms", "p95_ms", "p99_ms", "served", "degr", "shed",
              "exp", "fail", "batch", "cache");
}

void PrintRow(const std::string& label, const WindowStats& stats) {
  std::printf(
      "%-8s %8.1f %9.2f %9.2f %9.2f %7.0f %7.0f %5.0f %5.0f %5.0f %6.2f "
      "%5.0f%%\n",
      label.c_str(), stats.qps, stats.p50_us / 1000.0, stats.p95_us / 1000.0,
      stats.p99_us / 1000.0, stats.outcome_delta[0], stats.outcome_delta[1],
      stats.outcome_delta[2], stats.outcome_delta[3], stats.outcome_delta[4],
      stats.batch_occupancy, stats.cache_hit_rate * 100.0);
  std::fflush(stdout);
}

// ---------------------------------------------------------------------------
// SLO expressions
// ---------------------------------------------------------------------------

struct SloCheck {
  std::string text;    // original expression, for reporting
  std::string metric;  // canonical name
  bool less = true;    // direction of the bound
  bool or_equal = false;
  double bound = 0.0;  // canonical units (us for latencies, fraction for
                       // shares)
};

std::string Trim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

bool IsLatencyMetric(const std::string& metric) {
  return metric == "p50" || metric == "p95" || metric == "p99";
}

/// Parses one "metric op value" expression. Latency values accept us/ms/s
/// suffixes (default us); share values accept a % suffix (else a fraction).
bool ParseSloCheck(const std::string& expr, SloCheck* out) {
  out->text = Trim(expr);
  const size_t op = out->text.find_first_of("<>");
  if (op == std::string::npos || op == 0) return false;
  std::string metric = Trim(out->text.substr(0, op));
  out->less = out->text[op] == '<';
  size_t value_begin = op + 1;
  out->or_equal = value_begin < out->text.size() &&
                  out->text[value_begin] == '=';
  if (out->or_equal) ++value_begin;
  std::string value = Trim(out->text.substr(value_begin));
  if (metric.size() > 3 && metric.compare(metric.size() - 3, 3, "_us") == 0) {
    metric.resize(metric.size() - 3);  // p99_us -> p99
  }
  if (metric.size() > 6 &&
      metric.compare(metric.size() - 6, 6, "_share") == 0) {
    metric.resize(metric.size() - 6);  // degraded_share -> degraded
  }
  out->metric = metric;

  double scale = 1.0;
  if (!value.empty() && value.back() == '%') {
    scale = 0.01;
    value.pop_back();
  } else if (value.size() > 2 &&
             value.compare(value.size() - 2, 2, "ms") == 0) {
    scale = 1000.0;
    value.resize(value.size() - 2);
  } else if (value.size() > 2 &&
             value.compare(value.size() - 2, 2, "us") == 0) {
    value.resize(value.size() - 2);
  } else if (value.size() > 1 && value.back() == 's' &&
             IsLatencyMetric(metric)) {
    scale = 1000.0 * 1000.0;
    value.pop_back();
  }
  char* end = nullptr;
  out->bound = std::strtod(value.c_str(), &end) * scale;
  if (end == nullptr || *Trim(end).c_str() != '\0') return false;

  return IsLatencyMetric(metric) || metric == "qps" || metric == "served" ||
         metric == "degraded" || metric == "shed" || metric == "expired" ||
         metric == "failed" || metric == "cache_hit" || metric == "balance";
}

double SloActual(const SloCheck& check, const WindowStats& stats) {
  if (check.metric == "p50") return stats.p50_us;
  if (check.metric == "p95") return stats.p95_us;
  if (check.metric == "p99") return stats.p99_us;
  if (check.metric == "qps") return stats.qps;
  if (check.metric == "served") return stats.share(0);
  if (check.metric == "degraded") return stats.share(1);
  if (check.metric == "shed") return stats.share(2);
  if (check.metric == "expired") return stats.share(3);
  if (check.metric == "failed") return stats.share(4);
  if (check.metric == "cache_hit") return stats.cache_hit_rate;
  if (check.metric == "balance") return stats.shard_balance();
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags = Flags::Parse(argc, argv);
    const int port = static_cast<int>(flags.GetInt("port", 0));
    if (port <= 0) {
      std::cerr << "error: --port is required\n" << kUsage;
      return 2;
    }
    const int64_t interval_ms = flags.GetInt("interval-ms", 1000);
    const int64_t scrapes = flags.GetInt("scrapes", 5);
    const std::string slo_text = flags.GetString("slo", "");

    std::vector<SloCheck> checks;
    size_t pos = 0;
    while (pos <= slo_text.size() && !slo_text.empty()) {
      size_t comma = slo_text.find(',', pos);
      if (comma == std::string::npos) comma = slo_text.size();
      const std::string expr = Trim(slo_text.substr(pos, comma - pos));
      pos = comma + 1;
      if (expr.empty()) continue;
      SloCheck check;
      if (!ParseSloCheck(expr, &check)) {
        std::cerr << "error: bad SLO expression '" << expr << "'\n" << kUsage;
        return 2;
      }
      checks.push_back(std::move(check));
      if (comma == slo_text.size()) break;
    }

    serve::HttpClient client(
        port, "127.0.0.1", static_cast<int>(flags.GetInt("timeout-ms", 5000)));
    const auto scrape_once = [&client](Scrape* out) {
      const serve::HttpClient::Result result = client.Get("/metrics");
      if (!result.ok || result.status != 200) {
        std::cerr << "error: scrape failed: "
                  << (result.ok ? "HTTP " + std::to_string(result.status)
                                : result.error)
                  << "\n";
        return false;
      }
      *out = ParseScrape(result.body);
      if (!out->ok) {
        std::cerr << "error: /metrics response missing "
                     "serve.request_latency_us\n";
        return false;
      }
      return true;
    };

    Scrape baseline;
    if (!scrape_once(&baseline)) return 2;
    std::printf("monitoring 127.0.0.1:%d (uptime %.1fs), %lld x %lldms\n",
                port, baseline.uptime_s,
                static_cast<long long>(scrapes),
                static_cast<long long>(interval_ms));
    PrintHeader();

    Scrape previous = baseline;
    Scrape last = baseline;
    for (int64_t i = 0; i < scrapes; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      if (!scrape_once(&last)) return 2;
      const WindowStats window = Diff(previous, last);
      PrintRow("w" + std::to_string(i + 1), window);
      PrintShardBalance(window);
      previous = last;
    }

    const WindowStats aggregate = Diff(baseline, last);
    PrintRow("total", aggregate);
    PrintShardBalance(aggregate);
    if (aggregate.requests <= 0) {
      std::cout << "warning: no requests observed; latency SLOs are vacuous\n";
    }

    int violations = 0;
    for (const SloCheck& check : checks) {
      const double actual = SloActual(check, aggregate);
      const bool pass = check.less
                            ? (check.or_equal ? actual <= check.bound
                                              : actual < check.bound)
                            : (check.or_equal ? actual >= check.bound
                                              : actual > check.bound);
      std::cout << (pass ? "SLO_PASS " : "SLO_FAIL ") << check.text
                << " actual=" << actual << "\n";
      if (!pass) ++violations;
    }
    if (violations > 0) {
      std::cerr << "error: " << violations << " SLO violation(s)\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
