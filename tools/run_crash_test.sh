#!/usr/bin/env bash
# Fault drill for hire_cli: SIGKILL the trainer mid-run, resume from the
# newest snapshot, and demand final parameters bitwise identical to an
# uninterrupted run; then flip one bit in the newest snapshot and demand
# the checksum rejects it, resume falls back to the previous one, and the
# final parameters still match byte for byte.
#
# Usage: run_crash_test.sh <path-to-hire_cli>
# Registered as the `crash_resume` ctest; also runnable by hand.
set -u

CLI="${1:?usage: run_crash_test.sh <path-to-hire_cli>}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/hire_crash_test.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

# Tiny model + dataset so the whole drill takes seconds. Every run uses the
# same flags: only then do the LR schedule and sampling streams line up.
COMMON=(train --profile=movielens --scale=0.02 --steps=30 --context=6
        --him-blocks=2 --heads=2 --head-dim=4 --embed-dim=4
        --seed=7 --threads=2 --log-every=0)
CKPT=(--checkpoint-dir="$WORK/ckpt" --checkpoint-every=5 --checkpoint-keep=10)

fail() { echo "FAIL: $*" >&2; exit 1; }

flip_bit() {  # flip_bit <file> <byte-offset>
  local file="$1" offset="$2" byte
  byte=$(od -An -tu1 -j "$offset" -N1 "$file" | tr -d ' ')
  printf "$(printf '\\%03o' $((byte ^ 8)))" |
    dd of="$file" bs=1 seek="$offset" conv=notrunc status=none
}

echo "== reference run (uninterrupted) =="
"$CLI" "${COMMON[@]}" --out="$WORK/ref.bin" || fail "reference run"

echo "== crash run (SIGKILL injected at step 17) =="
if HIRE_FAULT_CRASH_AT_STEP=17 \
    "$CLI" "${COMMON[@]}" "${CKPT[@]}" --out="$WORK/crashed.bin"; then
  fail "crash run was expected to be killed"
fi
[ -f "$WORK/crashed.bin" ] && fail "killed run still saved parameters"
[ -f "$WORK/ckpt/ckpt-000000000015.snap" ] || fail "no snapshot at step 15"

echo "== resume run =="
"$CLI" "${COMMON[@]}" "${CKPT[@]}" --resume --out="$WORK/resumed.bin" \
  || fail "resume run"
cmp "$WORK/ref.bin" "$WORK/resumed.bin" \
  || fail "resumed parameters differ from the uninterrupted run"
echo "ok: kill + resume is bitwise identical"

echo "== bit-flip newest snapshot; resume must fall back =="
newest=$(ls "$WORK/ckpt"/ckpt-*.snap | sort | tail -1)
size=$(stat -c%s "$newest")
flip_bit "$newest" $((size / 2))
"$CLI" "${COMMON[@]}" "${CKPT[@]}" --resume --out="$WORK/fallback.bin" \
  || fail "resume after corruption"
cmp "$WORK/ref.bin" "$WORK/fallback.bin" \
  || fail "fallback parameters differ from the uninterrupted run"
echo "ok: checksum fallback is bitwise identical"

echo "PASS"
