#!/usr/bin/env bash
# Chaos drill for the serving tier: boot `hire_cli serve` under every
# HIRE_FAULT_SERVE_* knob in turn and assert the engineered failure
# semantics hold on the wire —
#   A  slow batches + request deadlines   -> every request gets a 504
#   B  admission control under overload   -> 503 + Retry-After, no wedge
#   C  no model at boot                   -> 200 "degraded":true fallbacks,
#      automatic recovery after /reload, and the serve.outcome.* counters
#      partition every /predict exactly once
#   D  corrupt snapshot on /reload        -> 500, old model keeps serving
#   E  injected connection resets         -> clients see resets, never a
#      malformed 200
#   F  stalled (slow-loris) client        -> 408 cut-off while a parallel
#      healthy probe still answers
#   G  corrupt reload scoped to one shard -> the sick shard degrades to
#      user-mean fallbacks while the other three keep serving the model,
#      and the next /reload heals it
#
# Each phase boots a fresh server because fault knobs are read from the
# environment at process start.
#
# Usage: run_serve_chaos.sh <hire_cli> <serve_loadgen>
# Registered as the `serve_chaos` ctest; also runnable by hand.
set -u

CLI="${1:?usage: run_serve_chaos.sh <hire_cli> <serve_loadgen>}"
LOADGEN="${2:?usage: run_serve_chaos.sh <hire_cli> <serve_loadgen>}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/hire_serve_chaos.XXXXXX")"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# Model shape + dataset flags shared by training and serving (30 users x
# 25 items at this scale; request universes below stay inside that).
SHAPE=(--profile=movielens --scale=0.05 --him-blocks=2 --heads=2 --head-dim=4
       --embed-dim=4 --seed=7 --threads=2)

"$CLI" train "${SHAPE[@]}" --steps=30 --context=6 --log-every=0 \
    --out="$WORK/model.bin" >/dev/null || fail "training the model"

# start_server <logfile> [extra serve flags...] — fault env vars must be
# exported by the caller beforehand. Sets SERVER_PID and PORT.
start_server() {
  local log="$1"; shift
  "$CLI" serve "${SHAPE[@]}" --port=0 --context=8 --max-batch-users=4 \
      "$@" >"$log" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/^SERVE_LISTENING port=\([0-9]*\)$/\1/p' "$log")"
    [ -n "$PORT" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null \
        || { cat "$log" >&2; fail "server exited before listening"; }
    sleep 0.1
  done
  [ -n "$PORT" ] || fail "server never printed SERVE_LISTENING"
}

stop_server() {
  "$LOADGEN" --mode=probe --port="$PORT" --method=POST --path=/shutdown \
      >/dev/null 2>&1
  for _ in $(seq 1 100); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
  done
  kill -0 "$SERVER_PID" 2>/dev/null && fail "server did not exit on /shutdown"
  SERVER_PID=""
}

metrics_counter() {  # metrics_counter <metrics json> <counter name>
  local value
  value="$(echo "$1" | grep -o "\"$2\":[0-9]*" | grep -o '[0-9]*$')"
  echo "${value:-0}"
}

# ---------------------------------------------------------------------------
echo "phase A: slow batches + deadlines -> 504"
export HIRE_FAULT_SERVE_SLOW_HANDLER_MS=150
start_server "$WORK/a.log" --model="$WORK/model.bin" --request-deadline-ms=40
"$LOADGEN" --mode=drive --port="$PORT" --clients=2 --requests-per-client=5 \
    --max-user=30 --max-item=25 --allow-status=504 >"$WORK/a_drive.log" 2>&1 \
    || { cat "$WORK/a_drive.log" >&2; fail "phase A drive"; }
grep -q "DRIVE_STATUS.* 504=10" "$WORK/a_drive.log" \
    || { cat "$WORK/a_drive.log" >&2; fail "expected all 10 requests to 504"; }
METRICS="$("$LOADGEN" --mode=probe --port="$PORT" --path=/metrics)" \
    || fail "phase A /metrics"
[ "$(metrics_counter "$METRICS" serve.outcome.expired)" -eq 10 ] \
    || fail "serve.outcome.expired != 10"
[ "$(metrics_counter "$METRICS" serve.deadline_exceeded)" -eq 10 ] \
    || fail "serve.deadline_exceeded != 10"
stop_server
unset HIRE_FAULT_SERVE_SLOW_HANDLER_MS

# ---------------------------------------------------------------------------
echo "phase B: admission control -> 503 + Retry-After"
export HIRE_FAULT_SERVE_SLOW_HANDLER_MS=200
start_server "$WORK/b.log" --model="$WORK/model.bin" --max-inflight=2 \
    --queue-capacity=2 --batch-window-us=0
"$LOADGEN" --mode=drive --port="$PORT" --clients=6 --requests-per-client=4 \
    --max-user=30 --max-item=25 --allow-status=503 >"$WORK/b_drive.log" 2>&1 \
    || { cat "$WORK/b_drive.log" >&2; fail "phase B drive"; }
grep -q "DRIVE_STATUS.* 503=" "$WORK/b_drive.log" \
    || { cat "$WORK/b_drive.log" >&2; fail "overload never shed a request"; }
# A saturating background drive keeps both in-flight slots busy; a probe in
# that window must come back 503 with a Retry-After hint.
"$LOADGEN" --mode=drive --port="$PORT" --clients=4 --requests-per-client=20 \
    --max-user=30 --max-item=25 --allow-status=503 >/dev/null 2>&1 &
BG_DRIVE=$!
SHED=""
for _ in $(seq 1 20); do
  OUT="$("$LOADGEN" --mode=probe --port="$PORT" --method=POST \
      --path=/predict --body='{"user":3,"items":[1]}' 2>/dev/null)"
  if echo "$OUT" | grep -q "PROBE_STATUS 503"; then SHED="$OUT"; break; fi
  sleep 0.1
done
wait "$BG_DRIVE" 2>/dev/null
[ -n "$SHED" ] || fail "never observed a 503 shed under saturation"
echo "$SHED" | grep -q "retry_after=1" \
    || fail "shed response lacked Retry-After: $SHED"
METRICS="$("$LOADGEN" --mode=probe --port="$PORT" --path=/metrics)" \
    || fail "phase B /metrics"
[ "$(metrics_counter "$METRICS" serve.outcome.shed)" -gt 0 ] \
    || fail "serve.outcome.shed never moved"
stop_server
unset HIRE_FAULT_SERVE_SLOW_HANDLER_MS

# ---------------------------------------------------------------------------
echo "phase C: no model at boot -> degraded fallbacks, recovery, accounting"
start_server "$WORK/c.log"  # no --model
HEALTH="$("$LOADGEN" --mode=probe --port="$PORT" --path=/healthz)" \
    || fail "degraded /healthz probe"
echo "$HEALTH" | grep -q '"status":"degraded"' \
    || fail "healthz must report degraded without a model: $HEALTH"
DEGRADED="$("$LOADGEN" --mode=probe --port="$PORT" --method=POST \
    --path=/predict --body='{"user":3,"items":[1,2]}')" \
    || fail "degraded /predict probe"
echo "$DEGRADED" | grep -q '"degraded":true' \
    || fail "model-less predict was not tagged degraded: $DEGRADED"
"$LOADGEN" --mode=drive --port="$PORT" --clients=2 --requests-per-client=10 \
    --max-user=30 --max-item=25 >"$WORK/c_drive.log" 2>&1 \
    || { cat "$WORK/c_drive.log" >&2; fail "phase C degraded drive"; }
grep -q "DRIVE_STATUS 200=20 degraded=20" "$WORK/c_drive.log" \
    || { cat "$WORK/c_drive.log" >&2; fail "degraded drive status mix"; }
# One malformed request exercises the failed-outcome path.
"$LOADGEN" --mode=probe --port="$PORT" --method=POST --path=/predict \
    --body='{not json' >/dev/null 2>&1 && fail "malformed predict returned 200"
# Recovery: publish a good snapshot and the fallback path switches off.
"$LOADGEN" --mode=probe --port="$PORT" --method=POST --path=/reload \
    --body="{\"model\":\"$WORK/model.bin\"}" >/dev/null \
    || fail "recovery /reload"
RECOVERED="$("$LOADGEN" --mode=probe --port="$PORT" --method=POST \
    --path=/predict --body='{"user":3,"items":[1,2]}')" \
    || fail "recovered /predict probe"
echo "$RECOVERED" | grep -q '"degraded":false' \
    || fail "predict stayed degraded after a good reload: $RECOVERED"
echo "$RECOVERED" | grep -q '"model_version":1' \
    || fail "recovered predict must carry the reloaded model version"
# Accounting: 23 /predict requests hit this server (1 degraded probe + 20
# degraded drive + 1 malformed + 1 recovered); the five outcome counters
# must partition them exactly.
METRICS="$("$LOADGEN" --mode=probe --port="$PORT" --path=/metrics)" \
    || fail "phase C /metrics"
SERVED="$(metrics_counter "$METRICS" serve.outcome.served)"
DEGR="$(metrics_counter "$METRICS" serve.outcome.degraded)"
SHEDC="$(metrics_counter "$METRICS" serve.outcome.shed)"
EXPIRED="$(metrics_counter "$METRICS" serve.outcome.expired)"
FAILED="$(metrics_counter "$METRICS" serve.outcome.failed)"
TOTAL=$((SERVED + DEGR + SHEDC + EXPIRED + FAILED))
[ "$TOTAL" -eq 23 ] \
    || fail "outcome counters sum to $TOTAL, want 23 (served=$SERVED degraded=$DEGR shed=$SHEDC expired=$EXPIRED failed=$FAILED)"
[ "$SERVED" -eq 1 ] || fail "served=$SERVED, want 1"
[ "$DEGR" -eq 21 ] || fail "degraded=$DEGR, want 21"
[ "$FAILED" -eq 1 ] || fail "failed=$FAILED, want 1"
[ "$(metrics_counter "$METRICS" serve.fallback_predictions)" -eq 21 ] \
    || fail "serve.fallback_predictions must count every fallback answer"
stop_server

# ---------------------------------------------------------------------------
echo "phase D: corrupt snapshot on /reload -> 500, old model keeps serving"
cp "$WORK/model.bin" "$WORK/disposable.bin"
export HIRE_FAULT_SERVE_CORRUPT_RELOAD=1
start_server "$WORK/d.log" --model="$WORK/model.bin"
OUT="$("$LOADGEN" --mode=probe --port="$PORT" --method=POST --path=/reload \
    --body="{\"model\":\"$WORK/disposable.bin\"}" 2>/dev/null)"
echo "$OUT" | grep -q "PROBE_STATUS 500" \
    || fail "corrupt reload must answer 500, got: $OUT"
HEALTH="$("$LOADGEN" --mode=probe --port="$PORT" --path=/healthz)" \
    || fail "post-corrupt-reload /healthz"
echo "$HEALTH" | grep -q '"model_version":1' \
    || fail "corrupt reload must keep model v1 published: $HEALTH"
AFTER="$("$LOADGEN" --mode=probe --port="$PORT" --method=POST \
    --path=/predict --body='{"user":3,"items":[1,2]}')" \
    || fail "predict after corrupt reload"
echo "$AFTER" | grep -q '"degraded":false' \
    || fail "the surviving model must answer normally: $AFTER"
stop_server
unset HIRE_FAULT_SERVE_CORRUPT_RELOAD

# ---------------------------------------------------------------------------
echo "phase E: injected connection resets -> clean errors, no malformed 200"
export HIRE_FAULT_SERVE_RESET_EVERY=5
start_server "$WORK/e.log" --model="$WORK/model.bin"
"$LOADGEN" --mode=drive --port="$PORT" --clients=2 --requests-per-client=20 \
    --max-user=30 --max-item=25 --allow-transport-errors \
    >"$WORK/e_drive.log" 2>&1 \
    || { cat "$WORK/e_drive.log" >&2; fail "phase E drive (a reset leaked a bad response)"; }
grep -q "transport_errors=0" "$WORK/e_drive.log" \
    && fail "reset injection never fired"
METRICS="$("$LOADGEN" --mode=probe --port="$PORT" --path=/metrics)" \
    || fail "phase E /metrics"
[ "$(metrics_counter "$METRICS" serve.http.injected_resets)" -gt 0 ] \
    || fail "serve.http.injected_resets never moved"
stop_server
unset HIRE_FAULT_SERVE_RESET_EVERY

# ---------------------------------------------------------------------------
echo "phase F: stalled client -> 408 cut-off, healthy probes unaffected"
start_server "$WORK/f.log" --model="$WORK/model.bin" --header-timeout-ms=200
# The stall knob is read by the CLIENT process: it dribbles half the request
# head, sleeps past the server's read deadline, and must get cut off.
STALLED_RC=0
HIRE_FAULT_SERVE_STALL_CLIENT_MS=600 "$LOADGEN" --mode=probe --port="$PORT" \
    --method=POST --path=/predict --body='{"user":3,"items":[1]}' \
    >"$WORK/f_stall.log" 2>&1 || STALLED_RC=$?
[ "$STALLED_RC" -ne 0 ] \
    || { cat "$WORK/f_stall.log" >&2; fail "stalled client was served a 200"; }
"$LOADGEN" --mode=probe --port="$PORT" --path=/healthz >/dev/null \
    || fail "healthy probe failed while a client stalled"
METRICS="$("$LOADGEN" --mode=probe --port="$PORT" --path=/metrics)" \
    || fail "phase F /metrics"
[ "$(metrics_counter "$METRICS" serve.http.request_read_timeouts)" -ge 1 ] \
    || fail "serve.http.request_read_timeouts never moved"
stop_server

# ---------------------------------------------------------------------------
echo "phase G: corrupt reload scoped to shard 1 -> fleet keeps serving"
# Boot a 4-shard fleet with NO model so the sick shard has nothing to fall
# back on: after the poisoned roll it must answer degraded while the other
# three serve the freshly loaded model.
export HIRE_FAULT_SERVE_CORRUPT_RELOAD_SHARD=1
start_server "$WORK/g.log" --shards=4  # no --model
OUT="$("$LOADGEN" --mode=probe --port="$PORT" --method=POST --path=/reload \
    --body="{\"model\":\"$WORK/model.bin\"}" 2>/dev/null)"
echo "$OUT" | grep -q "PROBE_STATUS 500" \
    || fail "a roll with one sick shard must answer 500, got: $OUT"
echo "$OUT" | grep -q '"failed_shards":1' \
    || fail "expected exactly one failed shard: $OUT"
echo "$OUT" | grep -q '"shard_versions":\[1,0,1,1\]' \
    || fail "expected shard 1 left at v0, rest at v1: $OUT"
HEALTH="$("$LOADGEN" --mode=probe --port="$PORT" --path=/healthz)" \
    || fail "sick-fleet /healthz"
echo "$HEALTH" | grep -q '"status":"degraded"' \
    || fail "healthz must report degraded while a shard is unloaded: $HEALTH"
# Walk the user universe: every user answers 200, users routed to shard 1
# get tagged degraded fallbacks, everyone else gets real model predictions.
SICK=0
HEALTHY=0
for user in $(seq 0 29); do
  OUT="$("$LOADGEN" --mode=probe --port="$PORT" --method=POST --path=/predict \
      --body="{\"user\":$user,\"items\":[1,2]}")" \
      || fail "predict for user $user on the sick fleet"
  if echo "$OUT" | grep -q '"shard":1[,}]'; then
    echo "$OUT" | grep -q '"degraded":true' \
        || fail "user $user on the sick shard was not degraded: $OUT"
    SICK=$((SICK + 1))
  else
    echo "$OUT" | grep -q '"degraded":false' \
        || fail "user $user on a healthy shard was degraded: $OUT"
    HEALTHY=$((HEALTHY + 1))
  fi
done
[ "$SICK" -gt 0 ] || fail "no user routed to the sick shard"
[ "$HEALTHY" -gt 0 ] || fail "no user routed to a healthy shard"
# The fault is one-shot: the next roll heals shard 1 and the fleet reports
# healthy again.
"$LOADGEN" --mode=probe --port="$PORT" --method=POST --path=/reload \
    --body="{\"model\":\"$WORK/model.bin\"}" >"$WORK/g_heal.log" \
    || { cat "$WORK/g_heal.log" >&2; fail "healing /reload"; }
grep -q '"shard_versions":\[2,1,2,2\]' "$WORK/g_heal.log" \
    || fail "healing roll must publish on every shard: $(cat "$WORK/g_heal.log")"
HEALTH="$("$LOADGEN" --mode=probe --port="$PORT" --path=/healthz)" \
    || fail "healed-fleet /healthz"
echo "$HEALTH" | grep -q '"status":"ok"' \
    || fail "fleet must report ok after the healing roll: $HEALTH"
METRICS="$("$LOADGEN" --mode=probe --port="$PORT" --path=/metrics)" \
    || fail "phase G /metrics"
[ "$(metrics_counter "$METRICS" serve.reload.shard_failures)" -eq 1 ] \
    || fail "serve.reload.shard_failures must count the one sick swap"
stop_server
unset HIRE_FAULT_SERVE_CORRUPT_RELOAD_SHARD

echo "PASS: deadlines, shedding, degradation, corrupt reload, resets, slow-loris, and the sick-shard roll all held"
