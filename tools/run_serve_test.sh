#!/usr/bin/env bash
# Serving drill for hire_cli: train two tiny models, boot `hire_cli serve`
# on an ephemeral port, drive concurrent /predict traffic through the real
# HTTP stack while hot-swapping the model mid-flight, and then check that
#   - no in-flight request failed across the swap,
#   - /healthz reports the bumped model version,
#   - /metrics shows request + context-cache counters moving,
#   - POST /shutdown ends the serve loop cleanly,
#   - the telemetry JSONL carries one serve record per request, and
#   - the tracing-enabled server writes request-correlated spans at exit.
#
# Usage: run_serve_test.sh <hire_cli> <serve_loadgen> <validate_telemetry>
# Registered as the `serve_smoke` ctest; also runnable by hand.
set -u

CLI="${1:?usage: run_serve_test.sh <hire_cli> <serve_loadgen> <validate_telemetry>}"
LOADGEN="${2:?usage: run_serve_test.sh <hire_cli> <serve_loadgen> <validate_telemetry>}"
VALIDATOR="${3:?usage: run_serve_test.sh <hire_cli> <serve_loadgen> <validate_telemetry>}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/hire_serve_test.XXXXXX")"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# Model shape + dataset flags shared by training and serving: the serve
# command rebuilds the model skeleton from these before loading weights.
SHAPE=(--profile=movielens --scale=0.05 --him-blocks=2 --heads=2 --head-dim=4
       --embed-dim=4 --seed=7 --threads=2)

"$CLI" train "${SHAPE[@]}" --steps=30 --context=6 --log-every=0 \
    --out="$WORK/model_a.bin" >/dev/null || fail "training model A"
"$CLI" train "${SHAPE[@]}" --steps=60 --context=6 --log-every=0 \
    --out="$WORK/model_b.bin" >/dev/null || fail "training model B"

# Tracing-enabled pass: every 25th request is sampled into the Chrome-trace
# tracer, which the server flushes to disk on clean shutdown.
"$CLI" serve "${SHAPE[@]}" --model="$WORK/model_a.bin" --port=0 \
    --context=8 --batch-window-us=2000 --max-batch-users=4 \
    --trace-out="$WORK/serve_trace.json" --trace-sample-every=25 \
    --metrics-out="$WORK/metrics.jsonl" >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!

# The server prints "SERVE_LISTENING port=N" once the socket is bound.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^SERVE_LISTENING port=\([0-9]*\)$/\1/p' "$WORK/serve.log")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/serve.log" >&2; fail "server exited before listening"; }
  sleep 0.1
done
[ -n "$PORT" ] || fail "server never printed SERVE_LISTENING"

"$LOADGEN" --mode=probe --port="$PORT" --path=/healthz >/dev/null \
    || fail "/healthz probe"

# Concurrent load through the HTTP stack; the dataset at scale 0.05 has
# 30 users x 25 items, so keep request universes inside that.
"$LOADGEN" --mode=drive --port="$PORT" --clients=4 --requests-per-client=100 \
    --max-user=30 --max-item=25 --items-per-request=3 \
    >"$WORK/drive.log" 2>&1 &
DRIVE_PID=$!

# Hot-swap to model B while the drive traffic is in flight.
sleep 0.3
"$LOADGEN" --mode=probe --port="$PORT" --method=POST --path=/reload \
    --body="{\"model\":\"$WORK/model_b.bin\"}" >/dev/null \
    || fail "mid-flight /reload"

wait "$DRIVE_PID" || { cat "$WORK/drive.log" >&2; fail "drive traffic had failed requests across the hot swap"; }

HEALTH="$("$LOADGEN" --mode=probe --port="$PORT" --path=/healthz)" \
    || fail "post-swap /healthz probe"
echo "$HEALTH" | grep -q '"model_version":2' \
    || fail "expected model_version 2 after reload, got: $HEALTH"

METRICS="$("$LOADGEN" --mode=probe --port="$PORT" --path=/metrics)" \
    || fail "/metrics probe"
REQUESTS="$(echo "$METRICS" | grep -o '"serve.requests":[0-9]*' | grep -o '[0-9]*$')"
CACHE_HITS="$(echo "$METRICS" | grep -o '"serve.context_cache.hits":[0-9]*' | grep -o '[0-9]*$')"
[ -n "$REQUESTS" ] && [ "$REQUESTS" -ge 400 ] \
    || fail "serve.requests counter did not cover the drive traffic (got '${REQUESTS:-absent}')"
[ -n "$CACHE_HITS" ] && [ "$CACHE_HITS" -gt 0 ] \
    || fail "serve.context_cache.hits never moved (got '${CACHE_HITS:-absent}')"

"$LOADGEN" --mode=probe --port="$PORT" --method=POST --path=/shutdown \
    >/dev/null || fail "/shutdown probe"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  kill "$SERVER_PID"
  fail "server did not exit after /shutdown"
fi
wait "$SERVER_PID" || { cat "$WORK/serve.log" >&2; fail "server exited non-zero"; }
SERVER_PID=""

# One serve record per drive request, plus the final snapshot.
"$VALIDATOR" --metrics="$WORK/metrics.jsonl" --min-steps=0 --min-serve=400 \
    || fail "serve telemetry validation"

# The sampled requests must have produced correlated spans in the trace.
"$VALIDATOR" --trace="$WORK/serve_trace.json" || fail "serve trace validation"
grep -q '"name":"req#[0-9]*/total"' "$WORK/serve_trace.json" \
    || fail "trace has no req#<id>/total spans"

# --------------------------------------------------------------------------
# Sharded pass: the same drill against a 4-shard fleet behind the event-loop
# front-end. Checks shard-aware /healthz, per-shard routing counters that
# sum to the total traffic, and a rolling /reload with zero failed requests.
# --------------------------------------------------------------------------
"$CLI" serve "${SHAPE[@]}" --model="$WORK/model_a.bin" --port=0 --shards=4 \
    --context=8 --batch-window-us=2000 --max-batch-users=4 \
    >"$WORK/serve_sharded.log" 2>&1 &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^SERVE_LISTENING port=\([0-9]*\)$/\1/p' "$WORK/serve_sharded.log")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/serve_sharded.log" >&2; fail "sharded server exited before listening"; }
  sleep 0.1
done
[ -n "$PORT" ] || fail "sharded server never printed SERVE_LISTENING"

HEALTH="$("$LOADGEN" --mode=probe --port="$PORT" --path=/healthz)" \
    || fail "sharded /healthz probe"
echo "$HEALTH" | grep -q '"shards":4' \
    || fail "expected \"shards\":4 in healthz, got: $HEALTH"
echo "$HEALTH" | grep -q '"shard_versions":\[1,1,1,1\]' \
    || fail "expected shard_versions [1,1,1,1], got: $HEALTH"

"$LOADGEN" --mode=drive --port="$PORT" --clients=4 --requests-per-client=100 \
    --max-user=30 --max-item=25 --items-per-request=3 \
    >"$WORK/drive_sharded.log" 2>&1 &
DRIVE_PID=$!

# Rolling hot-swap across all four shards while the drive is in flight.
sleep 0.3
"$LOADGEN" --mode=probe --port="$PORT" --method=POST --path=/reload \
    --body="{\"model\":\"$WORK/model_b.bin\"}" >/dev/null \
    || fail "mid-flight rolling /reload"

wait "$DRIVE_PID" || { cat "$WORK/drive_sharded.log" >&2; fail "sharded drive had failed requests across the rolling swap"; }

HEALTH="$("$LOADGEN" --mode=probe --port="$PORT" --path=/healthz)" \
    || fail "post-roll /healthz probe"
echo "$HEALTH" | grep -q '"model_version":2' \
    || fail "expected fleet model_version 2 after rolling reload, got: $HEALTH"
echo "$HEALTH" | grep -q '"shard_versions":\[2,2,2,2\]' \
    || fail "expected every shard at version 2, got: $HEALTH"

METRICS="$("$LOADGEN" --mode=probe --port="$PORT" --path=/metrics)" \
    || fail "sharded /metrics probe"
ROUTED_SUM=0
NONZERO_SHARDS=0
for i in 0 1 2 3; do
  ROUTED="$(echo "$METRICS" | grep -o "\"serve.shard.$i.routed\":[0-9]*" | grep -o '[0-9]*$')"
  [ -n "$ROUTED" ] || fail "serve.shard.$i.routed missing from /metrics"
  ROUTED_SUM=$((ROUTED_SUM + ROUTED))
  [ "$ROUTED" -gt 0 ] && NONZERO_SHARDS=$((NONZERO_SHARDS + 1))
done
REQUESTS="$(echo "$METRICS" | grep -o '"serve.requests":[0-9]*' | grep -o '[0-9]*$')"
[ "$ROUTED_SUM" -eq "$REQUESTS" ] \
    || fail "per-shard routed counters ($ROUTED_SUM) do not sum to serve.requests ($REQUESTS)"
[ "$NONZERO_SHARDS" -ge 2 ] \
    || fail "drive traffic landed on $NONZERO_SHARDS shard(s); expected a spread"

"$LOADGEN" --mode=probe --port="$PORT" --method=POST --path=/shutdown \
    >/dev/null || fail "sharded /shutdown probe"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  kill "$SERVER_PID"
  fail "sharded server did not exit after /shutdown"
fi
wait "$SERVER_PID" || { cat "$WORK/serve_sharded.log" >&2; fail "sharded server exited non-zero"; }
SERVER_PID=""

echo "PASS: hot-swap under load, metrics, shutdown, telemetry, and the 4-shard rolling-reload pass all check out"
