#!/usr/bin/env bash
# Configures a Release build, runs the tensor micro-benchmark harness at
# 1/2/all threads, and writes BENCH_tensor.json at the repo root. Usage:
#   tools/run_bench.sh [build_dir] [extra bench flags...]
#
# Trace-capture mode: instead of the micro-benchmarks, run a short traced
# training job and write BENCH_trace.json (Chrome trace-event format, open in
# Perfetto) plus BENCH_telemetry.jsonl at the repo root:
#   tools/run_bench.sh --trace [build_dir] [extra hire_cli train flags...]
#
# Serving mode: train a small model, then measure the serving subsystem with
# the closed-loop load generator (batched vs unbatched, cold vs warm cache)
# and write BENCH_serve.json at the repo root:
#   tools/run_bench.sh --serve [build_dir] [extra serve_loadgen flags...]
#
# Kernel mode: time the fused inference kernels (fused attention, GEMM
# epilogue, online softmax, whole serve forward) against their tape
# equivalents and write BENCH_kernels.json at the repo root — the baseline
# the `kernel_regress` ctest gates against:
#   tools/run_bench.sh --kernels [build_dir] [extra bench flags...]
#
# Scaling-check mode: run the micro-benchmarks to a throwaway JSON and FAIL
# (nonzero exit) if any threaded row whose thread count fits the machine is
# slower than the serial row beyond a tolerance (default 5%). Skipped with a
# message when the machine has a single effective core (every threaded row is
# oversubscribed there and measures only dispatch noise):
#   tools/run_bench.sh --check-scaling[=TOL] [build_dir] [extra bench flags...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

mode="bench"
check_scaling_flag=""
if [ "${1:-}" = "--trace" ]; then
  mode="trace"
  shift
elif [ "${1:-}" = "--serve" ]; then
  mode="serve"
  shift
elif [ "${1:-}" = "--kernels" ]; then
  mode="kernels"
  shift
elif [ "${1:-}" = "--check-scaling" ]; then
  mode="check"
  check_scaling_flag="--check_scaling"
  shift
elif [[ "${1:-}" = --check-scaling=* ]]; then
  mode="check"
  check_scaling_flag="--check_scaling=${1#--check-scaling=}"
  shift
fi

build_dir="${1:-${repo_root}/build}"
shift || true

nproc_count="$(nproc 2>/dev/null || echo 1)"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release

if [ "${mode}" = "trace" ]; then
  cmake --build "${build_dir}" --target hire_cli -j "${nproc_count}"
  work="$(mktemp -d "${TMPDIR:-/tmp}/hire_bench_trace.XXXXXX")"
  trap 'rm -rf "${work}"' EXIT
  "${build_dir}/tools/hire_cli" train \
    --profile=movielens --scale=0.05 --steps=50 --context=16 \
    --log-every=10 \
    --trace-out="${repo_root}/BENCH_trace.json" \
    --metrics-out="${repo_root}/BENCH_telemetry.jsonl" \
    --out="${work}/model.bin" \
    "$@"
  echo "wrote ${repo_root}/BENCH_trace.json and BENCH_telemetry.jsonl"
  exit 0
fi

if [ "${mode}" = "serve" ]; then
  cmake --build "${build_dir}" --target hire_cli serve_loadgen -j "${nproc_count}"
  work="$(mktemp -d "${TMPDIR:-/tmp}/hire_bench_serve.XXXXXX")"
  trap 'rm -rf "${work}"' EXIT
  # Dataset scale and context are chosen so batches actually coalesce:
  # a 16-column context leaves room for several 3-item queries per forward.
  "${build_dir}/tools/hire_cli" train \
    --profile=movielens --scale=0.2 --steps=40 --context=16 \
    --log-every=0 --out="${work}/model.bin"
  # The open-loop sweep offers a geometric RPS ladder to a single-shard and
  # a 4-shard server (so the saturation knee is visible per config) while
  # 2000 idle connections stay open to prove fd scale on the event loop.
  "${build_dir}/tools/serve_loadgen" --mode=bench \
    --model="${work}/model.bin" \
    --profile=movielens --scale=0.2 --context=16 \
    --clients=8 --requests-per-client=25 --items-per-request=3 \
    --batch-window-us=2000 \
    --shards=4 --open-loop-steps=5 --open-loop-base-rps=100 \
    --open-loop-duration-s=2 --open-loop-connections=64 \
    --idle-connections=2000 \
    --out="${repo_root}/BENCH_serve.json" \
    "$@"
  echo "wrote ${repo_root}/BENCH_serve.json"
  exit 0
fi

if [ "${mode}" = "kernels" ]; then
  cmake --build "${build_dir}" --target bench_kernels -j "${nproc_count}"
  "${build_dir}/bench/bench_kernels" \
    --emit_json="${repo_root}/BENCH_kernels.json" \
    "$@"
  echo "wrote ${repo_root}/BENCH_kernels.json"
  exit 0
fi

# 1, 2, nproc, and an 8-way row for cross-machine comparability (deduped).
threads="$(printf '%s\n' 1 2 "${nproc_count}" 8 | sort -nu | paste -sd,)"

cmake --build "${build_dir}" --target bench_micro_tensor -j "${nproc_count}"

if [ "${mode}" = "check" ]; then
  work="$(mktemp -d "${TMPDIR:-/tmp}/hire_bench_check.XXXXXX")"
  trap 'rm -rf "${work}"' EXIT
  if [ "${nproc_count}" -le 1 ]; then
    echo "check-scaling: skipped (1 effective core; threaded rows would be" \
         "oversubscribed and measure only dispatch noise)"
    exit 0
  fi
  # set -e aborts here with the binary's FAIL lines if any row regresses.
  "${build_dir}/bench/bench_micro_tensor" \
    --emit_json="${work}/bench_check.json" \
    --threads="${threads}" \
    "${check_scaling_flag}" \
    "$@"
  echo "check-scaling: PASS (no threaded row slower than serial beyond" \
       "tolerance at any (op, shape) with threads <= ${nproc_count} cores)"
  exit 0
fi

"${build_dir}/bench/bench_micro_tensor" \
  --emit_json="${repo_root}/BENCH_tensor.json" \
  --threads="${threads}" \
  "$@"

echo "wrote ${repo_root}/BENCH_tensor.json"
