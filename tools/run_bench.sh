#!/usr/bin/env bash
# Configures a Release build, runs the tensor micro-benchmark harness at
# 1/2/all threads, and writes BENCH_tensor.json at the repo root. Usage:
#   tools/run_bench.sh [build_dir] [extra bench flags...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
shift || true

nproc_count="$(nproc 2>/dev/null || echo 1)"
# 1, 2, nproc, and an 8-way row for cross-machine comparability (deduped).
threads="$(printf '%s\n' 1 2 "${nproc_count}" 8 | sort -nu | paste -sd,)"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" --target bench_micro_tensor -j "${nproc_count}"

"${build_dir}/bench/bench_micro_tensor" \
  --emit_json="${repo_root}/BENCH_tensor.json" \
  --threads="${threads}" \
  "$@"

echo "wrote ${repo_root}/BENCH_tensor.json"
