# Empty dependencies file for hire_optim.
# This may be replaced when dependencies are built.
