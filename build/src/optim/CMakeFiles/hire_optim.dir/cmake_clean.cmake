file(REMOVE_RECURSE
  "CMakeFiles/hire_optim.dir/adam.cc.o"
  "CMakeFiles/hire_optim.dir/adam.cc.o.d"
  "CMakeFiles/hire_optim.dir/lamb.cc.o"
  "CMakeFiles/hire_optim.dir/lamb.cc.o.d"
  "CMakeFiles/hire_optim.dir/lookahead.cc.o"
  "CMakeFiles/hire_optim.dir/lookahead.cc.o.d"
  "CMakeFiles/hire_optim.dir/lr_scheduler.cc.o"
  "CMakeFiles/hire_optim.dir/lr_scheduler.cc.o.d"
  "CMakeFiles/hire_optim.dir/optimizer.cc.o"
  "CMakeFiles/hire_optim.dir/optimizer.cc.o.d"
  "CMakeFiles/hire_optim.dir/sgd.cc.o"
  "CMakeFiles/hire_optim.dir/sgd.cc.o.d"
  "libhire_optim.a"
  "libhire_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hire_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
