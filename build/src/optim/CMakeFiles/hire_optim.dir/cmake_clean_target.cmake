file(REMOVE_RECURSE
  "libhire_optim.a"
)
