file(REMOVE_RECURSE
  "CMakeFiles/hire_nn.dir/embedding.cc.o"
  "CMakeFiles/hire_nn.dir/embedding.cc.o.d"
  "CMakeFiles/hire_nn.dir/init.cc.o"
  "CMakeFiles/hire_nn.dir/init.cc.o.d"
  "CMakeFiles/hire_nn.dir/layer_norm.cc.o"
  "CMakeFiles/hire_nn.dir/layer_norm.cc.o.d"
  "CMakeFiles/hire_nn.dir/linear.cc.o"
  "CMakeFiles/hire_nn.dir/linear.cc.o.d"
  "CMakeFiles/hire_nn.dir/mlp.cc.o"
  "CMakeFiles/hire_nn.dir/mlp.cc.o.d"
  "CMakeFiles/hire_nn.dir/module.cc.o"
  "CMakeFiles/hire_nn.dir/module.cc.o.d"
  "CMakeFiles/hire_nn.dir/multi_head_self_attention.cc.o"
  "CMakeFiles/hire_nn.dir/multi_head_self_attention.cc.o.d"
  "CMakeFiles/hire_nn.dir/serialize.cc.o"
  "CMakeFiles/hire_nn.dir/serialize.cc.o.d"
  "libhire_nn.a"
  "libhire_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hire_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
