file(REMOVE_RECURSE
  "libhire_nn.a"
)
