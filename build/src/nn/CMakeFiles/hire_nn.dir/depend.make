# Empty dependencies file for hire_nn.
# This may be replaced when dependencies are built.
