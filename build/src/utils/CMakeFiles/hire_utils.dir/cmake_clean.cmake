file(REMOVE_RECURSE
  "CMakeFiles/hire_utils.dir/flags.cc.o"
  "CMakeFiles/hire_utils.dir/flags.cc.o.d"
  "CMakeFiles/hire_utils.dir/logging.cc.o"
  "CMakeFiles/hire_utils.dir/logging.cc.o.d"
  "CMakeFiles/hire_utils.dir/string_utils.cc.o"
  "CMakeFiles/hire_utils.dir/string_utils.cc.o.d"
  "CMakeFiles/hire_utils.dir/table_printer.cc.o"
  "CMakeFiles/hire_utils.dir/table_printer.cc.o.d"
  "CMakeFiles/hire_utils.dir/thread_pool.cc.o"
  "CMakeFiles/hire_utils.dir/thread_pool.cc.o.d"
  "libhire_utils.a"
  "libhire_utils.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hire_utils.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
