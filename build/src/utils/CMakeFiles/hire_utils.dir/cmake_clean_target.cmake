file(REMOVE_RECURSE
  "libhire_utils.a"
)
