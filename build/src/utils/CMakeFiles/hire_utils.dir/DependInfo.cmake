
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/utils/flags.cc" "src/utils/CMakeFiles/hire_utils.dir/flags.cc.o" "gcc" "src/utils/CMakeFiles/hire_utils.dir/flags.cc.o.d"
  "/root/repo/src/utils/logging.cc" "src/utils/CMakeFiles/hire_utils.dir/logging.cc.o" "gcc" "src/utils/CMakeFiles/hire_utils.dir/logging.cc.o.d"
  "/root/repo/src/utils/string_utils.cc" "src/utils/CMakeFiles/hire_utils.dir/string_utils.cc.o" "gcc" "src/utils/CMakeFiles/hire_utils.dir/string_utils.cc.o.d"
  "/root/repo/src/utils/table_printer.cc" "src/utils/CMakeFiles/hire_utils.dir/table_printer.cc.o" "gcc" "src/utils/CMakeFiles/hire_utils.dir/table_printer.cc.o.d"
  "/root/repo/src/utils/thread_pool.cc" "src/utils/CMakeFiles/hire_utils.dir/thread_pool.cc.o" "gcc" "src/utils/CMakeFiles/hire_utils.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
