# Empty compiler generated dependencies file for hire_utils.
# This may be replaced when dependencies are built.
