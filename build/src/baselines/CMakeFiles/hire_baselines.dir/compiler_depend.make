# Empty compiler generated dependencies file for hire_baselines.
# This may be replaced when dependencies are built.
