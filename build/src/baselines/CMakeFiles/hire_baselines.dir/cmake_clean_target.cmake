file(REMOVE_RECURSE
  "libhire_baselines.a"
)
