
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/afn.cc" "src/baselines/CMakeFiles/hire_baselines.dir/afn.cc.o" "gcc" "src/baselines/CMakeFiles/hire_baselines.dir/afn.cc.o.d"
  "/root/repo/src/baselines/deepfm.cc" "src/baselines/CMakeFiles/hire_baselines.dir/deepfm.cc.o" "gcc" "src/baselines/CMakeFiles/hire_baselines.dir/deepfm.cc.o.d"
  "/root/repo/src/baselines/feature_embedder.cc" "src/baselines/CMakeFiles/hire_baselines.dir/feature_embedder.cc.o" "gcc" "src/baselines/CMakeFiles/hire_baselines.dir/feature_embedder.cc.o.d"
  "/root/repo/src/baselines/graphrec_lite.cc" "src/baselines/CMakeFiles/hire_baselines.dir/graphrec_lite.cc.o" "gcc" "src/baselines/CMakeFiles/hire_baselines.dir/graphrec_lite.cc.o.d"
  "/root/repo/src/baselines/matrix_factorization.cc" "src/baselines/CMakeFiles/hire_baselines.dir/matrix_factorization.cc.o" "gcc" "src/baselines/CMakeFiles/hire_baselines.dir/matrix_factorization.cc.o.d"
  "/root/repo/src/baselines/melu_fo.cc" "src/baselines/CMakeFiles/hire_baselines.dir/melu_fo.cc.o" "gcc" "src/baselines/CMakeFiles/hire_baselines.dir/melu_fo.cc.o.d"
  "/root/repo/src/baselines/neumf.cc" "src/baselines/CMakeFiles/hire_baselines.dir/neumf.cc.o" "gcc" "src/baselines/CMakeFiles/hire_baselines.dir/neumf.cc.o.d"
  "/root/repo/src/baselines/pointwise_trainer.cc" "src/baselines/CMakeFiles/hire_baselines.dir/pointwise_trainer.cc.o" "gcc" "src/baselines/CMakeFiles/hire_baselines.dir/pointwise_trainer.cc.o.d"
  "/root/repo/src/baselines/simple_baselines.cc" "src/baselines/CMakeFiles/hire_baselines.dir/simple_baselines.cc.o" "gcc" "src/baselines/CMakeFiles/hire_baselines.dir/simple_baselines.cc.o.d"
  "/root/repo/src/baselines/tanp_lite.cc" "src/baselines/CMakeFiles/hire_baselines.dir/tanp_lite.cc.o" "gcc" "src/baselines/CMakeFiles/hire_baselines.dir/tanp_lite.cc.o.d"
  "/root/repo/src/baselines/wide_deep.cc" "src/baselines/CMakeFiles/hire_baselines.dir/wide_deep.cc.o" "gcc" "src/baselines/CMakeFiles/hire_baselines.dir/wide_deep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hire_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hire_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/hire_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/hire_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hire_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hire_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hire_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/hire_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/utils/CMakeFiles/hire_utils.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
