file(REMOVE_RECURSE
  "CMakeFiles/hire_baselines.dir/afn.cc.o"
  "CMakeFiles/hire_baselines.dir/afn.cc.o.d"
  "CMakeFiles/hire_baselines.dir/deepfm.cc.o"
  "CMakeFiles/hire_baselines.dir/deepfm.cc.o.d"
  "CMakeFiles/hire_baselines.dir/feature_embedder.cc.o"
  "CMakeFiles/hire_baselines.dir/feature_embedder.cc.o.d"
  "CMakeFiles/hire_baselines.dir/graphrec_lite.cc.o"
  "CMakeFiles/hire_baselines.dir/graphrec_lite.cc.o.d"
  "CMakeFiles/hire_baselines.dir/matrix_factorization.cc.o"
  "CMakeFiles/hire_baselines.dir/matrix_factorization.cc.o.d"
  "CMakeFiles/hire_baselines.dir/melu_fo.cc.o"
  "CMakeFiles/hire_baselines.dir/melu_fo.cc.o.d"
  "CMakeFiles/hire_baselines.dir/neumf.cc.o"
  "CMakeFiles/hire_baselines.dir/neumf.cc.o.d"
  "CMakeFiles/hire_baselines.dir/pointwise_trainer.cc.o"
  "CMakeFiles/hire_baselines.dir/pointwise_trainer.cc.o.d"
  "CMakeFiles/hire_baselines.dir/simple_baselines.cc.o"
  "CMakeFiles/hire_baselines.dir/simple_baselines.cc.o.d"
  "CMakeFiles/hire_baselines.dir/tanp_lite.cc.o"
  "CMakeFiles/hire_baselines.dir/tanp_lite.cc.o.d"
  "CMakeFiles/hire_baselines.dir/wide_deep.cc.o"
  "CMakeFiles/hire_baselines.dir/wide_deep.cc.o.d"
  "libhire_baselines.a"
  "libhire_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hire_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
