# Empty compiler generated dependencies file for hire_data.
# This may be replaced when dependencies are built.
