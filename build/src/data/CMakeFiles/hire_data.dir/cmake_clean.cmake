file(REMOVE_RECURSE
  "CMakeFiles/hire_data.dir/csv_loader.cc.o"
  "CMakeFiles/hire_data.dir/csv_loader.cc.o.d"
  "CMakeFiles/hire_data.dir/dataset.cc.o"
  "CMakeFiles/hire_data.dir/dataset.cc.o.d"
  "CMakeFiles/hire_data.dir/splits.cc.o"
  "CMakeFiles/hire_data.dir/splits.cc.o.d"
  "CMakeFiles/hire_data.dir/synthetic.cc.o"
  "CMakeFiles/hire_data.dir/synthetic.cc.o.d"
  "libhire_data.a"
  "libhire_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hire_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
