file(REMOVE_RECURSE
  "libhire_data.a"
)
