file(REMOVE_RECURSE
  "CMakeFiles/hire_autograd.dir/gradcheck.cc.o"
  "CMakeFiles/hire_autograd.dir/gradcheck.cc.o.d"
  "CMakeFiles/hire_autograd.dir/ops_basic.cc.o"
  "CMakeFiles/hire_autograd.dir/ops_basic.cc.o.d"
  "CMakeFiles/hire_autograd.dir/ops_linalg.cc.o"
  "CMakeFiles/hire_autograd.dir/ops_linalg.cc.o.d"
  "CMakeFiles/hire_autograd.dir/variable.cc.o"
  "CMakeFiles/hire_autograd.dir/variable.cc.o.d"
  "libhire_autograd.a"
  "libhire_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hire_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
