# Empty dependencies file for hire_autograd.
# This may be replaced when dependencies are built.
