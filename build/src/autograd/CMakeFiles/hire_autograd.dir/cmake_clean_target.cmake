file(REMOVE_RECURSE
  "libhire_autograd.a"
)
