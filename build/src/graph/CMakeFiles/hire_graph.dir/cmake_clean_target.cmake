file(REMOVE_RECURSE
  "libhire_graph.a"
)
