
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bipartite_graph.cc" "src/graph/CMakeFiles/hire_graph.dir/bipartite_graph.cc.o" "gcc" "src/graph/CMakeFiles/hire_graph.dir/bipartite_graph.cc.o.d"
  "/root/repo/src/graph/context_builder.cc" "src/graph/CMakeFiles/hire_graph.dir/context_builder.cc.o" "gcc" "src/graph/CMakeFiles/hire_graph.dir/context_builder.cc.o.d"
  "/root/repo/src/graph/samplers.cc" "src/graph/CMakeFiles/hire_graph.dir/samplers.cc.o" "gcc" "src/graph/CMakeFiles/hire_graph.dir/samplers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/hire_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hire_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/utils/CMakeFiles/hire_utils.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
