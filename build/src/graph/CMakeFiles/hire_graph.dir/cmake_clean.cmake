file(REMOVE_RECURSE
  "CMakeFiles/hire_graph.dir/bipartite_graph.cc.o"
  "CMakeFiles/hire_graph.dir/bipartite_graph.cc.o.d"
  "CMakeFiles/hire_graph.dir/context_builder.cc.o"
  "CMakeFiles/hire_graph.dir/context_builder.cc.o.d"
  "CMakeFiles/hire_graph.dir/samplers.cc.o"
  "CMakeFiles/hire_graph.dir/samplers.cc.o.d"
  "libhire_graph.a"
  "libhire_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hire_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
