# Empty compiler generated dependencies file for hire_graph.
# This may be replaced when dependencies are built.
