file(REMOVE_RECURSE
  "CMakeFiles/hire_core.dir/attention_analysis.cc.o"
  "CMakeFiles/hire_core.dir/attention_analysis.cc.o.d"
  "CMakeFiles/hire_core.dir/context_encoder.cc.o"
  "CMakeFiles/hire_core.dir/context_encoder.cc.o.d"
  "CMakeFiles/hire_core.dir/evaluation.cc.o"
  "CMakeFiles/hire_core.dir/evaluation.cc.o.d"
  "CMakeFiles/hire_core.dir/him_block.cc.o"
  "CMakeFiles/hire_core.dir/him_block.cc.o.d"
  "CMakeFiles/hire_core.dir/hire_model.cc.o"
  "CMakeFiles/hire_core.dir/hire_model.cc.o.d"
  "CMakeFiles/hire_core.dir/trainer.cc.o"
  "CMakeFiles/hire_core.dir/trainer.cc.o.d"
  "libhire_core.a"
  "libhire_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hire_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
