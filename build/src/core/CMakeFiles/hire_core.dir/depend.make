# Empty dependencies file for hire_core.
# This may be replaced when dependencies are built.
