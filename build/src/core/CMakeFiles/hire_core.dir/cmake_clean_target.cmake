file(REMOVE_RECURSE
  "libhire_core.a"
)
