
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attention_analysis.cc" "src/core/CMakeFiles/hire_core.dir/attention_analysis.cc.o" "gcc" "src/core/CMakeFiles/hire_core.dir/attention_analysis.cc.o.d"
  "/root/repo/src/core/context_encoder.cc" "src/core/CMakeFiles/hire_core.dir/context_encoder.cc.o" "gcc" "src/core/CMakeFiles/hire_core.dir/context_encoder.cc.o.d"
  "/root/repo/src/core/evaluation.cc" "src/core/CMakeFiles/hire_core.dir/evaluation.cc.o" "gcc" "src/core/CMakeFiles/hire_core.dir/evaluation.cc.o.d"
  "/root/repo/src/core/him_block.cc" "src/core/CMakeFiles/hire_core.dir/him_block.cc.o" "gcc" "src/core/CMakeFiles/hire_core.dir/him_block.cc.o.d"
  "/root/repo/src/core/hire_model.cc" "src/core/CMakeFiles/hire_core.dir/hire_model.cc.o" "gcc" "src/core/CMakeFiles/hire_core.dir/hire_model.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/hire_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/hire_core.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/hire_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/hire_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hire_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/hire_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/hire_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hire_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hire_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/utils/CMakeFiles/hire_utils.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
