file(REMOVE_RECURSE
  "CMakeFiles/hire_metrics.dir/ranking_metrics.cc.o"
  "CMakeFiles/hire_metrics.dir/ranking_metrics.cc.o.d"
  "libhire_metrics.a"
  "libhire_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hire_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
