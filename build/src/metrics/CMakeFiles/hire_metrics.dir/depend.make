# Empty dependencies file for hire_metrics.
# This may be replaced when dependencies are built.
