file(REMOVE_RECURSE
  "libhire_metrics.a"
)
