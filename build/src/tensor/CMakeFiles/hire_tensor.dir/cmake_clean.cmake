file(REMOVE_RECURSE
  "CMakeFiles/hire_tensor.dir/ops.cc.o"
  "CMakeFiles/hire_tensor.dir/ops.cc.o.d"
  "CMakeFiles/hire_tensor.dir/random.cc.o"
  "CMakeFiles/hire_tensor.dir/random.cc.o.d"
  "CMakeFiles/hire_tensor.dir/tensor.cc.o"
  "CMakeFiles/hire_tensor.dir/tensor.cc.o.d"
  "libhire_tensor.a"
  "libhire_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hire_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
