# Empty compiler generated dependencies file for hire_tensor.
# This may be replaced when dependencies are built.
