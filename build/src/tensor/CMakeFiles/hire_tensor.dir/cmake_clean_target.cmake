file(REMOVE_RECURSE
  "libhire_tensor.a"
)
