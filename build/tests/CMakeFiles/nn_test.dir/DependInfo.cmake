
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn_test.cc" "tests/CMakeFiles/nn_test.dir/nn_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/hire_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hire_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hire_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hire_data.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/hire_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/hire_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hire_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/hire_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hire_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/utils/CMakeFiles/hire_utils.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
