# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(utils_test "/root/repo/build/tests/utils_test")
set_tests_properties(utils_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;12;hire_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tensor_test "/root/repo/build/tests/tensor_test")
set_tests_properties(tensor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;13;hire_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(random_test "/root/repo/build/tests/random_test")
set_tests_properties(random_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;14;hire_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(autograd_test "/root/repo/build/tests/autograd_test")
set_tests_properties(autograd_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;15;hire_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nn_test "/root/repo/build/tests/nn_test")
set_tests_properties(nn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;16;hire_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(optim_test "/root/repo/build/tests/optim_test")
set_tests_properties(optim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;17;hire_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(metrics_test "/root/repo/build/tests/metrics_test")
set_tests_properties(metrics_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;18;hire_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(data_test "/root/repo/build/tests/data_test")
set_tests_properties(data_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;19;hire_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(graph_test "/root/repo/build/tests/graph_test")
set_tests_properties(graph_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;20;hire_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;21;hire_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baselines_test "/root/repo/build/tests/baselines_test")
set_tests_properties(baselines_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;22;hire_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;23;hire_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;24;hire_add_test;/root/repo/tests/CMakeLists.txt;0;")
