# Empty dependencies file for hire_cli.
# This may be replaced when dependencies are built.
