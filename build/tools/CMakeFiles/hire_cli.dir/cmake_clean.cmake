file(REMOVE_RECURSE
  "CMakeFiles/hire_cli.dir/hire_cli.cc.o"
  "CMakeFiles/hire_cli.dir/hire_cli.cc.o.d"
  "hire_cli"
  "hire_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hire_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
