file(REMOVE_RECURSE
  "CMakeFiles/movielens_cold_start.dir/movielens_cold_start.cpp.o"
  "CMakeFiles/movielens_cold_start.dir/movielens_cold_start.cpp.o.d"
  "movielens_cold_start"
  "movielens_cold_start.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movielens_cold_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
