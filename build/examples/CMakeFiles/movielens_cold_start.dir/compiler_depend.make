# Empty compiler generated dependencies file for movielens_cold_start.
# This may be replaced when dependencies are built.
