file(REMOVE_RECURSE
  "CMakeFiles/attention_case_study.dir/attention_case_study.cpp.o"
  "CMakeFiles/attention_case_study.dir/attention_case_study.cpp.o.d"
  "attention_case_study"
  "attention_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attention_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
