# Empty dependencies file for attention_case_study.
# This may be replaced when dependencies are built.
