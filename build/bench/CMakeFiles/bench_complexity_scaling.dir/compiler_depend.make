# Empty compiler generated dependencies file for bench_complexity_scaling.
# This may be replaced when dependencies are built.
