file(REMOVE_RECURSE
  "CMakeFiles/bench_complexity_scaling.dir/bench_complexity_scaling.cc.o"
  "CMakeFiles/bench_complexity_scaling.dir/bench_complexity_scaling.cc.o.d"
  "bench_complexity_scaling"
  "bench_complexity_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_complexity_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
