# Empty compiler generated dependencies file for bench_extra_baselines.
# This may be replaced when dependencies are built.
