file(REMOVE_RECURSE
  "CMakeFiles/bench_extra_baselines.dir/bench_extra_baselines.cc.o"
  "CMakeFiles/bench_extra_baselines.dir/bench_extra_baselines.cc.o.d"
  "bench_extra_baselines"
  "bench_extra_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
