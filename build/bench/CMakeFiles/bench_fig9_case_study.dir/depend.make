# Empty dependencies file for bench_fig9_case_study.
# This may be replaced when dependencies are built.
