file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_bookcrossing.dir/bench_table4_bookcrossing.cc.o"
  "CMakeFiles/bench_table4_bookcrossing.dir/bench_table4_bookcrossing.cc.o.d"
  "bench_table4_bookcrossing"
  "bench_table4_bookcrossing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_bookcrossing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
