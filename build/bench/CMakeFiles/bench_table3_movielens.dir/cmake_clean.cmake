file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_movielens.dir/bench_table3_movielens.cc.o"
  "CMakeFiles/bench_table3_movielens.dir/bench_table3_movielens.cc.o.d"
  "bench_table3_movielens"
  "bench_table3_movielens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_movielens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
