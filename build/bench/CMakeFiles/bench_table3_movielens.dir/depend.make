# Empty dependencies file for bench_table3_movielens.
# This may be replaced when dependencies are built.
