file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_douban.dir/bench_table5_douban.cc.o"
  "CMakeFiles/bench_table5_douban.dir/bench_table5_douban.cc.o.d"
  "bench_table5_douban"
  "bench_table5_douban.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_douban.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
