file(REMOVE_RECURSE
  "CMakeFiles/hire_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/hire_bench_common.dir/bench_common.cc.o.d"
  "libhire_bench_common.a"
  "libhire_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hire_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
