# Empty compiler generated dependencies file for hire_bench_common.
# This may be replaced when dependencies are built.
