file(REMOVE_RECURSE
  "libhire_bench_common.a"
)
